package workload

import (
	"sync"
	"testing"
	"time"
)

// ringDrain collects every chunk of one consumer's pass over the ring,
// asserting the segment/index labels advance the way the segment shape
// promises.
func ringDrain(t *testing.T, r *Ring, chunkSize int, segments []int) []uint64 {
	t.Helper()
	var got []uint64
	seg, idx := 0, 0
	for cur := 0; ; cur++ {
		c, ok := r.Get(cur)
		if !ok {
			break
		}
		if c.Seq != cur {
			t.Fatalf("chunk %d labeled Seq=%d", cur, c.Seq)
		}
		for seg < len(segments) && idx*chunkSize >= segments[seg] {
			seg, idx = seg+1, 0
		}
		if c.Segment != seg || c.Index != idx {
			t.Fatalf("chunk %d labeled (segment=%d, index=%d), want (%d, %d)",
				cur, c.Segment, c.Index, seg, idx)
		}
		got = append(got, c.Data...)
		r.Release(cur)
		idx++
	}
	return got
}

// TestRingMatchesTake pins the segmented multi-consumer stream against
// the materialized one: concatenating the ring's chunks must reproduce
// Take exactly, chunks must never straddle a segment boundary, and every
// consumer must observe the identical sequence.
func TestRingMatchesTake(t *testing.T) {
	for _, tc := range []struct {
		chunk    int
		segments []int
		depth    int
	}{
		{8, []int{64}, 2},
		{7, []int{64, 64}, 3},
		{16, []int{10, 70}, 2},
		{16, []int{0, 70}, 4},
		{16, []int{70, 0}, 4},
		{16, []int{0, 0}, 2},
		{1, []int{5, 3}, 1},
		{100, []int{64, 31}, 2},
	} {
		total := 0
		for _, n := range tc.segments {
			total += n
		}
		ref, err := NewBimodal(1<<8, 1<<12, 0.99, 42)
		if err != nil {
			t.Fatal(err)
		}
		want := Take(ref, total)

		gen, err := NewBimodal(1<<8, 1<<12, 0.99, 42)
		if err != nil {
			t.Fatal(err)
		}
		const consumers = 3
		r, err := NewRing(gen, tc.chunk, tc.segments, tc.depth, consumers)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		streams := make([][]uint64, consumers)
		for i := 0; i < consumers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				streams[i] = ringDrain(t, r, tc.chunk, tc.segments)
			}()
		}
		wg.Wait()
		for i, got := range streams {
			if len(got) != len(want) {
				t.Fatalf("chunk=%d segs=%v: consumer %d got %d requests, want %d",
					tc.chunk, tc.segments, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("chunk=%d segs=%v: consumer %d request %d = %d, want %d",
						tc.chunk, tc.segments, i, j, got[j], want[j])
				}
			}
		}
		st := r.Stats()
		wantChunks := 0
		for _, n := range tc.segments {
			wantChunks += (n + tc.chunk - 1) / tc.chunk
		}
		if st.Chunks != wantChunks || r.NumChunks() != wantChunks {
			t.Fatalf("chunk=%d segs=%v: published %d chunks (NumChunks %d), want %d",
				tc.chunk, tc.segments, st.Chunks, r.NumChunks(), wantChunks)
		}
		if st.PeakInFlight > tc.depth {
			t.Fatalf("chunk=%d segs=%v: peak in-flight %d exceeds depth %d",
				tc.chunk, tc.segments, st.PeakInFlight, tc.depth)
		}
	}
}

// TestRingRefcountHoldsBuffer is the refcount-release contract: a buffer
// is never recycled while a slow consumer still holds its chunk, even
// with a fast consumer pressing depth chunks ahead.
func TestRingRefcountHoldsBuffer(t *testing.T) {
	gen, err := NewUniform(1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	const depth, chunk, total = 2, 8, 64
	r, err := NewRing(gen, chunk, []int{total}, depth, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Slow consumer: obtains chunk 0 and sits on it.
	c0, ok := r.Get(0)
	if !ok {
		t.Fatal("expected chunk 0")
	}
	snapshot := append([]uint64(nil), c0.Data...)

	// Fast consumer: drains as far as the ring lets it, then blocks on
	// Get(depth) — that chunk needs slot 0, still pinned by the slow
	// consumer's reference.
	unblocked := make(chan []uint64)
	go func() {
		for cur := 0; cur < depth; cur++ {
			if _, ok := r.Get(cur); !ok {
				t.Error("fast consumer starved inside the lookahead window")
				close(unblocked)
				return
			}
			r.Release(cur)
		}
		c, ok := r.Get(depth)
		if !ok {
			t.Error("fast consumer lost chunk past the lookahead window")
			close(unblocked)
			return
		}
		data := append([]uint64(nil), c.Data...)
		r.Release(depth)
		r.DetachFrom(depth + 1)
		unblocked <- data
	}()

	select {
	case <-unblocked:
		t.Fatal("chunk 0's buffer was recycled while a consumer held it")
	case <-time.After(50 * time.Millisecond):
	}
	for i, v := range c0.Data {
		if v != snapshot[i] {
			t.Fatalf("held chunk 0 mutated at %d: %d != %d", i, v, snapshot[i])
		}
	}

	// Releasing the held chunk lets the producer refill slot 0 and the
	// fast consumer proceed.
	r.Release(0)
	select {
	case data := <-unblocked:
		if data == nil {
			t.Fatal("fast consumer failed after release")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast consumer still blocked after the slow consumer released")
	}

	// The slow consumer finishes its own pass from chunk 1 and must see
	// the same stream a fresh generator yields.
	ref, err := NewUniform(1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Take(ref, total)
	got := snapshot
	for cur := 1; ; cur++ {
		c, ok := r.Get(cur)
		if !ok {
			break
		}
		got = append(got, c.Data...)
		r.Release(cur)
	}
	if len(got) != len(want) {
		t.Fatalf("slow consumer got %d requests, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("slow consumer request %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestRingDetach verifies a consumer can leave mid-stream (poisoned cell,
// cancellation) without wedging the survivors or the producer.
func TestRingDetach(t *testing.T) {
	gen, err := NewUniform(1<<20, 7)
	if err != nil {
		t.Fatal(err)
	}
	const chunk, total = 8, 128
	r, err := NewRing(gen, chunk, []int{total}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Consumer A takes two chunks then detaches while still holding its
	// cursor at 2 (chunks 0 and 1 released, nothing held).
	for cur := 0; cur < 2; cur++ {
		if _, ok := r.Get(cur); !ok {
			t.Fatalf("expected chunk %d", cur)
		}
		r.Release(cur)
	}
	r.DetachFrom(2)

	// Consumer B drains the full stream alone.
	ref, err := NewUniform(1<<20, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := Take(ref, total)
	var got []uint64
	for cur := 0; ; cur++ {
		c, ok := r.Get(cur)
		if !ok {
			break
		}
		got = append(got, c.Data...)
		r.Release(cur)
	}
	if len(got) != len(want) {
		t.Fatalf("survivor got %d requests, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("survivor request %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestRingDetachWhileHolding covers the harder detach shape: the leaver
// still holds an unreleased chunk, and an earlier chunk it already
// released is still pinned by the survivor.
func TestRingDetachWhileHolding(t *testing.T) {
	gen, err := NewUniform(1<<20, 9)
	if err != nil {
		t.Fatal(err)
	}
	const chunk, total = 8, 128
	r, err := NewRing(gen, chunk, []int{total}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Survivor holds chunk 0. Leaver releases 0, obtains 1, and detaches
	// without releasing it — DetachFrom(1) must drop that reference.
	if _, ok := r.Get(0); !ok {
		t.Fatal("survivor: expected chunk 0")
	}
	if _, ok := r.Get(0); !ok {
		t.Fatal("leaver: expected chunk 0")
	}
	r.Release(0)
	if _, ok := r.Get(1); !ok {
		t.Fatal("leaver: expected chunk 1")
	}
	r.DetachFrom(1)

	// Survivor continues from its held chunk 0 and drains everything.
	ref, err := NewUniform(1<<20, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := Take(ref, total)
	c0, _ := r.Get(0)
	got := append([]uint64(nil), c0.Data...)
	r.Release(0)
	for cur := 1; ; cur++ {
		c, ok := r.Get(cur)
		if !ok {
			break
		}
		got = append(got, c.Data...)
		r.Release(cur)
	}
	if len(got) != len(want) {
		t.Fatalf("survivor got %d requests, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("survivor request %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestRingStop verifies abandoning the stream wakes blocked consumers and
// releases the producer.
func TestRingStop(t *testing.T) {
	gen, err := NewUniform(1<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(gen, 16, []int{1 << 20}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(0); !ok {
		t.Fatal("expected a first chunk")
	}
	// A consumer blocked past the published frontier must be woken by Stop.
	done := make(chan bool)
	go func() {
		_, ok := r.Get(2)
		done <- ok
	}()
	r.Stop()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Get succeeded after Stop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked consumer not woken by Stop")
	}
	if _, ok := r.Get(1); ok {
		t.Fatal("Get succeeded after Stop")
	}
	r.Stop() // idempotent
}

// TestRingFillHook verifies the hook fires once per chunk, in publish
// order, with the chunk's coordinates.
func TestRingFillHook(t *testing.T) {
	gen, err := NewUniform(1<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	type fire struct{ seq, segment, index int }
	var mu sync.Mutex
	var fires []fire
	hook := func(seq, segment, index int) {
		mu.Lock()
		fires = append(fires, fire{seq, segment, index})
		mu.Unlock()
	}
	r, err := NewRing(gen, 16, []int{40, 16}, 2, 1, WithFillHook(hook))
	if err != nil {
		t.Fatal(err)
	}
	for cur := 0; ; cur++ {
		if _, ok := r.Get(cur); !ok {
			break
		}
		r.Release(cur)
	}
	want := []fire{{0, 0, 0}, {1, 0, 1}, {2, 0, 2}, {3, 1, 0}}
	mu.Lock()
	defer mu.Unlock()
	if len(fires) != len(want) {
		t.Fatalf("hook fired %d times, want %d", len(fires), len(want))
	}
	for i, f := range fires {
		if f != want[i] {
			t.Fatalf("fire %d = %+v, want %+v", i, f, want[i])
		}
	}
}

// BenchmarkRingStream measures the steady-state cost of pushing chunks
// through the ring with one consumer; -benchmem pins the 0-alloc hot
// path (all buffers are preallocated at ring construction).
func BenchmarkRingStream(b *testing.B) {
	const (
		chunk   = 1 << 12
		nChunks = 64
	)
	b.SetBytes(8 * chunk * nChunks)
	b.ReportAllocs()
	gen, err := NewUniform(1<<20, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, err := NewRing(gen, chunk, []int{chunk * nChunks}, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for cur := 0; cur < nChunks; cur++ {
			c, ok := r.Get(cur)
			if !ok || len(c.Data) != chunk {
				b.Fatal("lost chunk")
			}
			r.Release(cur)
		}
	}
}
