package workload

import (
	"fmt"
	"io"

	"addrxlat/internal/trace"
)

// Replay is a Generator backed by a recorded trace, cycling when it
// reaches the end (so harnesses can draw warmup and measurement windows
// longer than the recording, as trace-driven simulators commonly do).
type Replay struct {
	pages []uint64
	next  int
	laps  int
}

var _ Generator = (*Replay)(nil)

// NewReplay wraps an in-memory page sequence.
func NewReplay(pages []uint64) (*Replay, error) {
	if len(pages) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return &Replay{pages: pages}, nil
}

// NewReplayFrom reads a binary trace (trace.Write format) from r.
func NewReplayFrom(r io.Reader) (*Replay, error) {
	pages, err := trace.Read(r)
	if err != nil {
		return nil, err
	}
	return NewReplay(pages)
}

// Next implements Generator.
func (rp *Replay) Next() uint64 {
	v := rp.pages[rp.next]
	rp.next++
	if rp.next == len(rp.pages) {
		rp.next = 0
		rp.laps++
	}
	return v
}

// NextBatch implements Batcher: whole stretches of the recording are
// copied out per call (with wraparound), instead of one virtual Next call
// per request.
func (rp *Replay) NextBatch(dst []uint64) {
	for len(dst) > 0 {
		n := copy(dst, rp.pages[rp.next:])
		rp.next += n
		if rp.next == len(rp.pages) {
			rp.next = 0
			rp.laps++
		}
		dst = dst[n:]
	}
}

// Name implements Generator.
func (rp *Replay) Name() string { return "replay" }

// StreamReplay replays a recorded trace directly from its file (or any
// io.ReadSeeker), decoding one chunk at a time through trace.Reader and
// cycling by re-seeking to the start — so replaying a multi-billion-access
// recording needs O(chunk) memory instead of O(trace), unlike Replay,
// which materializes the recording up front.
type StreamReplay struct {
	src   io.ReadSeeker
	tr    *trace.Reader
	buf   []uint64
	pos   int // next unread index in buf
	fill  int // valid prefix of buf
	count uint64
	laps  int
	err   error // first decode/seek error; panics surface it
}

var _ Generator = (*StreamReplay)(nil)
var _ Batcher = (*StreamReplay)(nil)

// NewStreamReplay opens a streaming replay over src with the given decode
// chunk size in pages (0 means workload.DefaultChunk). Empty traces are
// rejected, as in NewReplay.
func NewStreamReplay(src io.ReadSeeker, chunkSize int) (*StreamReplay, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunk
	}
	tr, err := trace.NewReader(src)
	if err != nil {
		return nil, err
	}
	if tr.Count() == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return &StreamReplay{
		src:   src,
		tr:    tr,
		buf:   make([]uint64, chunkSize),
		count: tr.Count(),
	}, nil
}

// refill decodes the next chunk, rewinding to the start of the recording
// when it is exhausted.
func (sr *StreamReplay) refill() {
	for {
		n, err := sr.tr.Read(sr.buf)
		if n > 0 {
			sr.pos, sr.fill = 0, n
			return
		}
		if err != io.EOF {
			sr.err = err
			panic(fmt.Sprintf("workload: stream replay: %v", err))
		}
		if _, err := sr.src.Seek(0, io.SeekStart); err != nil {
			sr.err = err
			panic(fmt.Sprintf("workload: stream replay rewind: %v", err))
		}
		tr, err := trace.NewReader(sr.src)
		if err != nil {
			sr.err = err
			panic(fmt.Sprintf("workload: stream replay rewind: %v", err))
		}
		sr.tr = tr
		sr.laps++
	}
}

// Next implements Generator.
func (sr *StreamReplay) Next() uint64 {
	if sr.pos == sr.fill {
		sr.refill()
	}
	v := sr.buf[sr.pos]
	sr.pos++
	return v
}

// NextBatch implements Batcher.
func (sr *StreamReplay) NextBatch(dst []uint64) {
	for len(dst) > 0 {
		if sr.pos == sr.fill {
			sr.refill()
		}
		n := copy(dst, sr.buf[sr.pos:sr.fill])
		sr.pos += n
		dst = dst[n:]
	}
}

// Name implements Generator.
func (sr *StreamReplay) Name() string { return "stream-replay" }

// Len returns the recording's length in accesses.
func (sr *StreamReplay) Len() int { return int(sr.count) }

// Laps reports how many times the recording has wrapped.
func (sr *StreamReplay) Laps() int { return sr.laps }

// Err returns the first decode or seek error, if any (also raised as a
// panic at the point of failure, since Generator.Next cannot fail).
func (sr *StreamReplay) Err() error { return sr.err }

// Len returns the recording's length.
func (rp *Replay) Len() int { return len(rp.pages) }

// Laps reports how many times the recording has wrapped.
func (rp *Replay) Laps() int { return rp.laps }

// Phased switches between sub-generators on a fixed schedule, modeling
// program phase behavior (init → compute → IO → compute …). Each phase
// runs for its configured length of accesses, cycling through the list.
type Phased struct {
	phases   []Phase
	current  int
	left     int
	switches int
}

// Phase is one phase of a phased workload.
type Phase struct {
	Gen    Generator
	Length int // accesses before moving to the next phase
}

var _ Generator = (*Phased)(nil)

// NewPhased builds a phase-switching generator.
func NewPhased(phases []Phase) (*Phased, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: at least one phase required")
	}
	for i, p := range phases {
		if p.Gen == nil {
			return nil, fmt.Errorf("workload: phase %d has nil generator", i)
		}
		if p.Length <= 0 {
			return nil, fmt.Errorf("workload: phase %d length %d must be positive", i, p.Length)
		}
	}
	return &Phased{phases: phases, left: phases[0].Length}, nil
}

// Next implements Generator.
func (p *Phased) Next() uint64 {
	if p.left == 0 {
		p.current = (p.current + 1) % len(p.phases)
		p.left = p.phases[p.current].Length
		p.switches++
	}
	p.left--
	return p.phases[p.current].Gen.Next()
}

// Name implements Generator.
func (p *Phased) Name() string { return fmt.Sprintf("phased(%d phases)", len(p.phases)) }

// Switches reports how many phase transitions have occurred.
func (p *Phased) Switches() int { return p.switches }
