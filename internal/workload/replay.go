package workload

import (
	"fmt"
	"io"

	"addrxlat/internal/trace"
)

// Replay is a Generator backed by a recorded trace, cycling when it
// reaches the end (so harnesses can draw warmup and measurement windows
// longer than the recording, as trace-driven simulators commonly do).
type Replay struct {
	pages []uint64
	next  int
	laps  int
}

var _ Generator = (*Replay)(nil)

// NewReplay wraps an in-memory page sequence.
func NewReplay(pages []uint64) (*Replay, error) {
	if len(pages) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return &Replay{pages: pages}, nil
}

// NewReplayFrom reads a binary trace (trace.Write format) from r.
func NewReplayFrom(r io.Reader) (*Replay, error) {
	pages, err := trace.Read(r)
	if err != nil {
		return nil, err
	}
	return NewReplay(pages)
}

// Next implements Generator.
func (rp *Replay) Next() uint64 {
	v := rp.pages[rp.next]
	rp.next++
	if rp.next == len(rp.pages) {
		rp.next = 0
		rp.laps++
	}
	return v
}

// NextBatch implements Batcher: whole stretches of the recording are
// copied out per call (with wraparound), instead of one virtual Next call
// per request.
func (rp *Replay) NextBatch(dst []uint64) {
	for len(dst) > 0 {
		n := copy(dst, rp.pages[rp.next:])
		rp.next += n
		if rp.next == len(rp.pages) {
			rp.next = 0
			rp.laps++
		}
		dst = dst[n:]
	}
}

// Name implements Generator.
func (rp *Replay) Name() string { return "replay" }

// Len returns the recording's length.
func (rp *Replay) Len() int { return len(rp.pages) }

// Laps reports how many times the recording has wrapped.
func (rp *Replay) Laps() int { return rp.laps }

// Phased switches between sub-generators on a fixed schedule, modeling
// program phase behavior (init → compute → IO → compute …). Each phase
// runs for its configured length of accesses, cycling through the list.
type Phased struct {
	phases   []Phase
	current  int
	left     int
	switches int
}

// Phase is one phase of a phased workload.
type Phase struct {
	Gen    Generator
	Length int // accesses before moving to the next phase
}

var _ Generator = (*Phased)(nil)

// NewPhased builds a phase-switching generator.
func NewPhased(phases []Phase) (*Phased, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: at least one phase required")
	}
	for i, p := range phases {
		if p.Gen == nil {
			return nil, fmt.Errorf("workload: phase %d has nil generator", i)
		}
		if p.Length <= 0 {
			return nil, fmt.Errorf("workload: phase %d length %d must be positive", i, p.Length)
		}
	}
	return &Phased{phases: phases, left: phases[0].Length}, nil
}

// Next implements Generator.
func (p *Phased) Next() uint64 {
	if p.left == 0 {
		p.current = (p.current + 1) % len(p.phases)
		p.left = p.phases[p.current].Length
		p.switches++
	}
	p.left--
	return p.phases[p.current].Gen.Next()
}

// Name implements Generator.
func (p *Phased) Name() string { return fmt.Sprintf("phased(%d phases)", len(p.phases)) }

// Switches reports how many phase transitions have occurred.
func (p *Phased) Switches() int { return p.switches }
