package workload

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"addrxlat/internal/xtrace"
)

// TestRingStopWithTracing aborts a traced ring mid-row — while the
// producer is blocked on a full ring — and asserts the abort contract
// tracing must not weaken: RingStats stay monotone across the abort, the
// producer goroutine exits, and the tracer still exports valid JSON (the
// blocked-on-consumers span is closed on the exit path, not leaked open).
func TestRingStopWithTracing(t *testing.T) {
	tr := xtrace.New()
	tr.SetScope("test")

	before := runtime.NumGoroutine()

	gen, err := NewBimodal(1<<8, 1<<12, 0.99, 42)
	if err != nil {
		t.Fatal(err)
	}
	const chunk, depth = 8, 2
	r, err := NewRing(gen, chunk, []int{64, 64}, depth, 1, WithTrace(tr.RingThread("abort-row")))
	if err != nil {
		t.Fatal(err)
	}

	// Drain two chunks, then hold the third without releasing: with depth
	// 2 the producer fills the ring and blocks on the held slot.
	for seq := 0; seq < 2; seq++ {
		c, ok := r.Get(seq)
		if !ok {
			t.Fatalf("chunk %d: stream ended early", seq)
		}
		if len(c.Data) != chunk {
			t.Fatalf("chunk %d: %d requests, want %d", seq, len(c.Data), chunk)
		}
		r.Release(seq)
	}
	if _, ok := r.Get(2); !ok {
		t.Fatal("chunk 2: stream ended early")
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().ProducerWaits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never blocked on the held chunk")
		}
		time.Sleep(time.Millisecond)
	}
	mid := r.Stats()

	// Abort mid-row. The held chunk is never released — Stop must still
	// unblock the producer.
	r.Stop()

	// The producer goroutine must exit.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("producer leaked: %d goroutines before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(time.Millisecond)
	}

	// Stats must be monotone across the abort: an abandoned stream reports
	// what happened, it never rolls counters back.
	final := r.Stats()
	if final.Chunks < mid.Chunks || final.ProducerWaits < mid.ProducerWaits ||
		final.ConsumerWaits < mid.ConsumerWaits || final.PeakInFlight < mid.PeakInFlight {
		t.Fatalf("stats regressed across Stop: mid %+v, final %+v", mid, final)
	}
	if final.Chunks >= r.NumChunks() {
		t.Fatalf("aborted stream claims %d of %d chunks published", final.Chunks, r.NumChunks())
	}
	if final.ProducerWaits == 0 || final.PeakInFlight != depth {
		t.Fatalf("expected a full blocked ring before the abort, got %+v", final)
	}

	// The producer has exited, so the tracer is quiescent: the export must
	// be schema-valid with the abort-path wait span present and closed.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := xtrace.Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("trace invalid after abort: %v", err)
	}
	if spans == 0 {
		t.Fatal("no spans exported: the blocked-producer episode was dropped")
	}
}
