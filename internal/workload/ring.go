package workload

import (
	"fmt"
	"sync"

	"addrxlat/internal/xtrace"
)

// DefaultLookahead is the chunk-ring depth the experiment harness streams
// with when the caller does not pick one: deep enough that the generator
// and a spread of simulator speeds stay decoupled (the fastest consumer
// can run depth-1 chunks ahead of the slowest), shallow enough that the
// resident window (depth × chunk) stays cache- and memory-friendly.
const DefaultLookahead = 4

// Chunk is one published chunk of a Ring: the request slice plus its
// position in the stream. Data is valid until the receiving consumer
// passes the chunk's Seq to Release (or DetachFrom).
type Chunk struct {
	Data    []uint64
	Seq     int // global chunk index across all segments
	Segment int // which segment (e.g. warmup=0, measured=1) the chunk belongs to
	Index   int // chunk index within its segment
}

// RingStats describes one finished (or abandoned) stream: how much was
// published and which side of the pipeline blocked. ProducerWaits counts
// the generator blocking on a slot still held by consumers — simulation
// is the bottleneck; ConsumerWaits counts consumers blocking on a chunk
// not yet published — generation is the bottleneck. Each count is one
// blocking episode, not one wakeup.
type RingStats struct {
	Chunks        int // chunks published
	ProducerWaits int // generator blocked on a full ring (simulation-bound)
	ConsumerWaits int // consumers blocked on an unpublished chunk (generation-bound)
	PeakInFlight  int // peak published-but-unreleased chunk count (≤ depth)
}

// Ring streams a bounded prefix of a Generator as fixed-size chunks
// through a depth-K ring of reusable buffers, produced by a dedicated
// goroutine running ahead of its consumers and released by reference
// count: a buffer is recycled only when every attached consumer has
// passed it. It generalizes the double-buffered single-consumer Source
// in two directions the pipelined row executor needs:
//
//   - Multiple consumers, each with its own cursor: consumer i calls
//     Get(seq) for seq = 0, 1, 2, … at its own pace; the ring bounds the
//     skew between the fastest and slowest consumer to depth chunks.
//   - Segments: the stream is a concatenation of per-segment request
//     counts (the harness's warmup and measured windows). Chunks never
//     straddle a segment boundary — each segment is chunked from zero
//     exactly as a dedicated Source per window would — so consumers can
//     reset counters at the boundary without a global barrier.
//
// The chunk sequence concatenates to exactly the requests repeated
// Generator.Next calls would yield; chunking is invisible to consumers.
// Get/Release/DetachFrom are safe for concurrent use by distinct
// consumers; a single consumer must call them from one goroutine.
type Ring struct {
	chunkSize int
	depth     int
	nChunks   int
	fillHook  func(seq, segment, index int)
	trace     *xtrace.Thread // producer-owned timeline; nil when tracing is off

	mu        sync.Mutex
	canRead   sync.Cond // consumers wait for a publish
	canWrite  sync.Cond // the producer waits for a slot to drain
	bufs      [][]uint64
	meta      []Chunk // per-slot descriptor of the chunk currently occupying it
	refs      []int   // consumers yet to release the slot's current chunk
	consumers int
	published int
	inFlight  int
	stopped   bool
	stats     RingStats

	producerDone chan struct{} // closed when the producer goroutine exits
}

// RingOption configures NewRing.
type RingOption func(*Ring)

// WithFillHook installs fn to run in the producer goroutine after each
// chunk is generated, just before it is published — the hook point for
// per-chunk fault injection and production-side telemetry. It must not
// call back into the ring.
func WithFillHook(fn func(seq, segment, index int)) RingOption {
	return func(r *Ring) { r.fillHook = fn }
}

// WithTrace attaches an execution-trace timeline to the producer: spans
// for the episodes it blocks on a full ring (xtrace.WaitConsumers) and a
// counter track sampling the in-flight depth and backpressure counts at
// each publish. The thread becomes producer-owned — nothing else may
// record into it until the producer exits. A nil thread is a no-op, so
// callers pass the result of RingThread unconditionally.
func WithTrace(th *xtrace.Thread) RingOption {
	return func(r *Ring) { r.trace = th }
}

// NewRing starts streaming the segments' requests from g in chunks of
// chunkSize through a ring depth buffers deep, for the given number of
// consumers. The final chunk of each segment is short when chunkSize does
// not divide the segment; a zero-length segment contributes no chunks but
// still occupies a Segment index. The producer goroutine exits after the
// last chunk is published, when Stop is called, or when every consumer
// has detached.
func NewRing(g Generator, chunkSize int, segments []int, depth, consumers int, opts ...RingOption) (*Ring, error) {
	if g == nil {
		return nil, fmt.Errorf("workload: nil generator")
	}
	if chunkSize <= 0 || depth < 1 || consumers < 1 {
		return nil, fmt.Errorf("workload: invalid ring shape chunk=%d depth=%d consumers=%d",
			chunkSize, depth, consumers)
	}
	nChunks := 0
	for _, total := range segments {
		if total < 0 {
			return nil, fmt.Errorf("workload: negative segment length %d", total)
		}
		nChunks += (total + chunkSize - 1) / chunkSize
	}
	r := &Ring{
		chunkSize: chunkSize,
		depth:     depth,
		nChunks:   nChunks,
		bufs:      make([][]uint64, depth),
		meta:      make([]Chunk, depth),
		refs:      make([]int, depth),
		consumers: consumers,
	}
	for _, opt := range opts {
		opt(r)
	}
	r.canRead.L = &r.mu
	r.canWrite.L = &r.mu
	for i := range r.bufs {
		r.bufs[i] = make([]uint64, chunkSize)
	}
	for i := range r.meta {
		r.meta[i].Seq = -1
	}
	r.producerDone = make(chan struct{})
	go func() {
		defer close(r.producerDone)
		r.produce(g, segments)
	}()
	return r, nil
}

// produce fills and publishes every chunk of every segment in order,
// reusing each slot once its previous occupant is fully released.
func (r *Ring) produce(g Generator, segments []int) {
	seq := 0
	for segIdx, total := range segments {
		for idx := 0; total > 0; idx++ {
			n := r.chunkSize
			if total < n {
				n = total
			}
			slot := seq % r.depth
			waitStart := int64(-1)
			r.mu.Lock()
			if r.refs[slot] != 0 && !r.stopped && r.consumers > 0 {
				r.stats.ProducerWaits++
				if r.trace != nil {
					waitStart = r.trace.Now()
				}
				for r.refs[slot] != 0 && !r.stopped && r.consumers > 0 {
					r.canWrite.Wait()
				}
			}
			dead := r.stopped || r.consumers == 0
			r.mu.Unlock()
			if waitStart >= 0 {
				r.trace.Span(xtrace.WaitConsumers, xtrace.CatWait, waitStart,
					xtrace.ArgInt("seq", int64(seq)))
			}
			if dead {
				return
			}

			// The slot is invisible to consumers until published below, so
			// generation runs outside the lock.
			buf := r.bufs[slot][:n]
			Fill(g, buf)
			if r.fillHook != nil {
				r.fillHook(seq, segIdx, idx)
			}

			r.mu.Lock()
			r.meta[slot] = Chunk{Data: buf, Seq: seq, Segment: segIdx, Index: idx}
			r.refs[slot] = r.consumers
			r.published++
			r.inFlight++
			if r.inFlight > r.stats.PeakInFlight {
				r.stats.PeakInFlight = r.inFlight
			}
			r.stats.Chunks++
			inFlight, st := r.inFlight, r.stats
			r.canRead.Broadcast()
			r.mu.Unlock()

			if r.trace != nil {
				// Counter samples at publish, outside the lock, from the
				// values captured under it.
				r.trace.Counter("ring", xtrace.ArgInt("in_flight", int64(inFlight)))
				r.trace.Counter("ring backpressure",
					xtrace.ArgInt("producer_waits", int64(st.ProducerWaits)),
					xtrace.ArgInt("consumer_waits", int64(st.ConsumerWaits)))
			}

			seq++
			total -= n
		}
	}
}

// NumChunks reports how many chunks the full stream publishes.
func (r *Ring) NumChunks() int { return r.nChunks }

// Get returns chunk seq, blocking until it is published. ok is false when
// the stream holds no chunk seq (seq ≥ NumChunks) or the ring was
// stopped. Each consumer must call Get with its own cursor, in order:
// seq = 0, 1, 2, …, releasing each chunk before getting the next.
func (r *Ring) Get(seq int) (c Chunk, ok bool) {
	if seq >= r.nChunks {
		return Chunk{}, false
	}
	r.mu.Lock()
	if seq >= r.published && !r.stopped {
		r.stats.ConsumerWaits++
		for seq >= r.published && !r.stopped {
			r.canRead.Wait()
		}
	}
	if r.stopped || seq >= r.published {
		r.mu.Unlock()
		return Chunk{}, false
	}
	// The slot cannot have been refilled: that would need this consumer's
	// release, and it releases in cursor order.
	c = r.meta[seq%r.depth]
	r.mu.Unlock()
	return c, true
}

// Release hands back one consumer's reference on chunk seq. When the last
// reference drops, the slot becomes refillable and the producer wakes.
func (r *Ring) Release(seq int) {
	slot := seq % r.depth
	r.mu.Lock()
	r.refs[slot]--
	if r.refs[slot] == 0 {
		r.inFlight--
		r.canWrite.Signal()
	}
	r.mu.Unlock()
}

// DetachFrom removes one consumer from the ring: every published chunk
// from seq on that the consumer has not released is released on its
// behalf, and chunks published later are no longer counted against it.
// seq is the consumer's cursor — the first chunk it has not released
// (whether or not it obtained it). The consumer must not call Get or
// Release afterwards. A consumer that drains the full stream does not
// need to detach.
func (r *Ring) DetachFrom(seq int) {
	r.mu.Lock()
	r.consumers--
	for slot := range r.refs {
		if r.refs[slot] > 0 && r.meta[slot].Seq >= seq {
			r.refs[slot]--
			if r.refs[slot] == 0 {
				r.inFlight--
			}
		}
	}
	r.canWrite.Broadcast()
	r.mu.Unlock()
}

// Stop abandons the stream: the producer exits without publishing
// further chunks and every pending or future Get returns ok=false. Safe
// to call at any time, from any goroutine, more than once. Consumers
// holding chunks need not release them after Stop.
//
// Stop blocks until the producer goroutine has exited (at most one
// chunk-generation time away). That join is what makes trace export
// safe: the producer emits trailing wait spans and counter samples into
// its timeline after its last publish, so a Tracer must not be read
// until Stop has returned. Every executor path Stops its ring (or
// Source) before exporting.
func (r *Ring) Stop() {
	r.mu.Lock()
	if !r.stopped {
		r.stopped = true
		r.canRead.Broadcast()
		r.canWrite.Broadcast()
	}
	r.mu.Unlock()
	<-r.producerDone
}

// Stats reports the stream's pipeline counters. Call after the stream is
// drained (or stopped) for final numbers; mid-stream snapshots are valid
// but racy against further progress.
func (r *Ring) Stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
