package workload

import (
	"fmt"
	"math"

	"addrxlat/internal/hashutil"
)

// ArrivalProcess yields request inter-arrival gaps for the open-loop
// serving layer (internal/serve). Time is virtual integer nanoseconds —
// no wall clocks anywhere — so a seeded process replays the identical
// arrival timeline on every run, which is what lets the serve tables pin
// byte-identical across worker counts and hosts.
type ArrivalProcess interface {
	// NextDelayNs returns the gap to the next arrival, always >= 1 ns.
	NextDelayNs() int64
	// Name identifies the process (seed and rate included), for manifests.
	Name() string
}

// expDelay draws an exponential inter-arrival gap with the given mean,
// floored at 1 ns so virtual time always advances.
func expDelay(rng *hashutil.RNG, meanNs float64) int64 {
	// Float64 is in [0, 1); 1-u is in (0, 1], keeping Log finite.
	d := int64(meanNs * -math.Log(1-rng.Float64()))
	if d < 1 {
		d = 1
	}
	return d
}

// Poisson is a memoryless arrival process: exponential gaps with mean
// meanNs, i.e. rate 1/meanNs arrivals per virtual nanosecond.
type Poisson struct {
	rng    *hashutil.RNG
	meanNs float64
	seed   uint64
}

// NewPoisson returns a Poisson process with mean inter-arrival meanNs.
func NewPoisson(seed uint64, meanNs float64) *Poisson {
	if meanNs <= 0 {
		panic("workload: Poisson requires meanNs > 0")
	}
	return &Poisson{rng: hashutil.NewRNG(seed), meanNs: meanNs, seed: seed}
}

func (p *Poisson) NextDelayNs() int64 { return expDelay(p.rng, p.meanNs) }

func (p *Poisson) Name() string {
	return fmt.Sprintf("poisson(mean=%gns,seed=%d)", p.meanNs, p.seed)
}

// OnOffBurst alternates a Poisson "on" phase (mean gap meanOnNs for onNs
// of virtual time) with a silent "off" phase of offNs — the classic
// bursty on/off source. The long-run offered rate is
// onNs / (onNs+offNs) / meanOnNs, so for the same average load as a
// Poisson source the on-phase pressure is (onNs+offNs)/onNs times higher.
type OnOffBurst struct {
	rng      *hashutil.RNG
	meanOnNs float64
	onNs     int64
	offNs    int64
	phasePos int64 // virtual time consumed inside the current on phase
	seed     uint64
}

// NewOnOffBurst returns an on/off source: Poisson gaps with mean meanOnNs
// while on, phases of onNs on / offNs off.
func NewOnOffBurst(seed uint64, meanOnNs float64, onNs, offNs int64) *OnOffBurst {
	if meanOnNs <= 0 || onNs <= 0 || offNs < 0 {
		panic("workload: OnOffBurst requires meanOnNs > 0, onNs > 0, offNs >= 0")
	}
	return &OnOffBurst{rng: hashutil.NewRNG(seed), meanOnNs: meanOnNs, onNs: onNs, offNs: offNs, seed: seed}
}

func (b *OnOffBurst) NextDelayNs() int64 {
	d := expDelay(b.rng, b.meanOnNs)
	b.phasePos += d
	if b.phasePos >= b.onNs {
		// The gap that crosses the phase edge absorbs the whole off phase.
		b.phasePos = 0
		d += b.offNs
	}
	return d
}

func (b *OnOffBurst) Name() string {
	return fmt.Sprintf("onoff(meanOn=%gns,on=%dns,off=%dns,seed=%d)", b.meanOnNs, b.onNs, b.offNs, b.seed)
}

// Diurnal modulates a Poisson source with a sum of sinusoids — the
// multi-period "time of day × day of week" shape of real serving traffic,
// compressed to virtual time. The instantaneous rate at virtual time t is
//
//	rate(t) = (1/meanNs) · max(0.1, 1 + Σ_i amps[i]·sin(2π t/periods[i]))
//
// so amps sum < 1 keeps the source always-on while still sweeping through
// troughs and peaks; the long-run average rate stays ≈ 1/meanNs.
type Diurnal struct {
	rng     *hashutil.RNG
	meanNs  float64
	periods []int64
	amps    []float64
	now     int64 // process-local virtual clock
	seed    uint64
}

// NewDiurnal returns a diurnal source with base mean gap meanNs and one
// sinusoid per (periods[i], amps[i]) pair.
func NewDiurnal(seed uint64, meanNs float64, periods []int64, amps []float64) *Diurnal {
	if meanNs <= 0 || len(periods) == 0 || len(periods) != len(amps) {
		panic("workload: Diurnal requires meanNs > 0 and len(periods) == len(amps) > 0")
	}
	for _, p := range periods {
		if p <= 0 {
			panic("workload: Diurnal periods must be > 0")
		}
	}
	return &Diurnal{rng: hashutil.NewRNG(seed), meanNs: meanNs, periods: append([]int64(nil), periods...), amps: append([]float64(nil), amps...), seed: seed}
}

func (d *Diurnal) NextDelayNs() int64 {
	rel := 1.0
	for i, p := range d.periods {
		rel += d.amps[i] * math.Sin(2*math.Pi*float64(d.now%p)/float64(p))
	}
	if rel < 0.1 {
		rel = 0.1
	}
	gap := expDelay(d.rng, d.meanNs/rel)
	d.now += gap
	return gap
}

func (d *Diurnal) Name() string {
	return fmt.Sprintf("diurnal(mean=%gns,periods=%v,amps=%v,seed=%d)", d.meanNs, d.periods, d.amps, d.seed)
}
