package workload

import "testing"

// drain sums n gaps from p, returning total virtual time and count.
func drain(p ArrivalProcess, n int) int64 {
	var total int64
	for i := 0; i < n; i++ {
		d := p.NextDelayNs()
		if d < 1 {
			panic("gap < 1ns")
		}
		total += d
	}
	return total
}

func TestArrivalsDeterministic(t *testing.T) {
	mk := map[string]func() ArrivalProcess{
		"poisson": func() ArrivalProcess { return NewPoisson(7, 1000) },
		"onoff":   func() ArrivalProcess { return NewOnOffBurst(7, 250, 50_000, 150_000) },
		"diurnal": func() ArrivalProcess { return NewDiurnal(7, 1000, []int64{1_000_000, 7_000_000}, []float64{0.5, 0.25}) },
	}
	for name, f := range mk {
		a, b := f(), f()
		for i := 0; i < 10_000; i++ {
			if ga, gb := a.NextDelayNs(), b.NextDelayNs(); ga != gb {
				t.Fatalf("%s: gap %d diverged: %d vs %d", name, i, ga, gb)
			}
		}
	}
}

func TestArrivalsMeanRate(t *testing.T) {
	const n = 200_000
	// Poisson: observed mean gap within 5% of the configured 1000 ns.
	if total := drain(NewPoisson(1, 1000), n); total < 950*n || total > 1050*n {
		t.Errorf("poisson mean gap %.1f ns, want ~1000", float64(total)/n)
	}
	// OnOff with mean 250 on-gap, 25%% duty cycle: long-run mean gap ~1000.
	if total := drain(NewOnOffBurst(1, 250, 50_000, 150_000), n); total < 900*n || total > 1100*n {
		t.Errorf("onoff mean gap %.1f ns, want ~1000", float64(total)/n)
	}
	// Diurnal with zero-mean sinusoids: long-run mean gap near 1000. The
	// rate floor and 1/rate convexity bias the mean slightly; allow 15%.
	if total := drain(NewDiurnal(1, 1000, []int64{1_000_000, 7_000_000}, []float64{0.5, 0.25}), n); total < 850*n || total > 1150*n {
		t.Errorf("diurnal mean gap %.1f ns, want ~1000", float64(total)/n)
	}
}

// TestPoissonSeededExact pins the seeded virtual-time sequence itself:
// the serve tables and the metrics windows built on them are
// byte-identical across hosts only because these exact gaps come out of
// the same seed everywhere.
func TestPoissonSeededExact(t *testing.T) {
	p := NewPoisson(7, 1000)
	want := []int64{16, 2310, 874, 602, 286, 631, 397, 144}
	for i, w := range want {
		if g := p.NextDelayNs(); g != w {
			t.Fatalf("gap %d = %d, want %d", i, g, w)
		}
	}
}

// TestOnOffBurstWindowEdges looks at the burst source the way the
// metrics layer does — fixed-width virtual-time windows — and pins both
// the seeded exact position of the first phase edge and the windowed
// shape: off phases show up as empty windows at roughly the duty-cycle
// fraction, and on-phase windows carry the full burst intensity.
func TestOnOffBurstWindowEdges(t *testing.T) {
	// Seeded exact: with mean on-gap 250 over a 50 µs on phase, the first
	// crossing gap absorbs the whole 150 µs off phase, landing arrival
	// 181 at exactly t=200286 — the first arrival of the second on phase.
	b := NewOnOffBurst(7, 250, 50_000, 150_000)
	var now int64
	for i := 1; ; i++ {
		d := b.NextDelayNs()
		now += d
		if d >= 150_000 {
			if i != 181 || now != 200_286 {
				t.Fatalf("first off-phase crossing: arrival %d at t=%d, want 181 at t=200286", i, now)
			}
			break
		}
		if i > 1000 {
			t.Fatal("no off-phase crossing in the first 1000 arrivals")
		}
	}

	// Windowed shape: bucket arrivals into windows of the on-phase width.
	const width = 50_000
	b = NewOnOffBurst(11, 250, 50_000, 150_000)
	counts := map[int64]int{}
	now = 0
	var last int64
	for i := 0; i < 40_000; i++ {
		now += b.NextDelayNs()
		counts[now/width]++
		last = now / width
	}
	empty, max := 0, 0
	for w := int64(0); w <= last; w++ {
		if c := counts[w]; c == 0 {
			empty++
		} else if c > max {
			max = c
		}
	}
	// Duty cycle is 25%, but phases drift off the window grid (phasePos
	// resets at the crossing arrival), so a 50 µs on phase typically
	// straddles two 50 µs windows: ~2 of every 4 windows see arrivals.
	frac := float64(empty) / float64(last+1)
	if frac < 0.4 || frac > 0.75 {
		t.Errorf("empty-window fraction = %.2f, want ~0.5", frac)
	}
	// An on-phase window at 4× the average rate holds ~200 arrivals.
	if max < 120 {
		t.Errorf("densest window holds %d arrivals, want the ~200 of a full on phase", max)
	}
}

// TestDiurnalWindowPhase folds the diurnal source into absolute-time
// phase bins (the process advances its own virtual clock, so bins align
// exactly with the sinusoid): windows under the peak must carry several
// times the arrivals of windows in the trough.
func TestDiurnalWindowPhase(t *testing.T) {
	const period, width = 1_000_000, 125_000 // 8 bins per period
	d := NewDiurnal(7, 1000, []int64{period}, []float64{0.9})
	bins := [8]int{}
	var now int64
	for i := 0; i < 100_000; i++ {
		now += d.NextDelayNs()
		bins[(now%period)/width]++
	}
	// sin peaks at t=period/4 (bins 1-2) and troughs at 3·period/4
	// (bins 5-6), where the rate floor caps the rate at 0.1/mean.
	peak := bins[1] + bins[2]
	trough := bins[5] + bins[6]
	if trough == 0 {
		t.Fatal("trough bins empty: the 0.1 rate floor should keep the source always-on")
	}
	if peak < 3*trough {
		t.Errorf("peak bins %d vs trough bins %d: want ≥ 3× contrast (bins: %v)", peak, trough, bins)
	}
}

func TestOnOffBurstHasGaps(t *testing.T) {
	b := NewOnOffBurst(3, 100, 10_000, 90_000)
	var long int
	for i := 0; i < 10_000; i++ {
		if b.NextDelayNs() >= 90_000 {
			long++
		}
	}
	if long == 0 {
		t.Fatal("no off-phase gaps observed")
	}
}
