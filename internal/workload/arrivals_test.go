package workload

import "testing"

// drain sums n gaps from p, returning total virtual time and count.
func drain(p ArrivalProcess, n int) int64 {
	var total int64
	for i := 0; i < n; i++ {
		d := p.NextDelayNs()
		if d < 1 {
			panic("gap < 1ns")
		}
		total += d
	}
	return total
}

func TestArrivalsDeterministic(t *testing.T) {
	mk := map[string]func() ArrivalProcess{
		"poisson": func() ArrivalProcess { return NewPoisson(7, 1000) },
		"onoff":   func() ArrivalProcess { return NewOnOffBurst(7, 250, 50_000, 150_000) },
		"diurnal": func() ArrivalProcess { return NewDiurnal(7, 1000, []int64{1_000_000, 7_000_000}, []float64{0.5, 0.25}) },
	}
	for name, f := range mk {
		a, b := f(), f()
		for i := 0; i < 10_000; i++ {
			if ga, gb := a.NextDelayNs(), b.NextDelayNs(); ga != gb {
				t.Fatalf("%s: gap %d diverged: %d vs %d", name, i, ga, gb)
			}
		}
	}
}

func TestArrivalsMeanRate(t *testing.T) {
	const n = 200_000
	// Poisson: observed mean gap within 5% of the configured 1000 ns.
	if total := drain(NewPoisson(1, 1000), n); total < 950*n || total > 1050*n {
		t.Errorf("poisson mean gap %.1f ns, want ~1000", float64(total)/n)
	}
	// OnOff with mean 250 on-gap, 25%% duty cycle: long-run mean gap ~1000.
	if total := drain(NewOnOffBurst(1, 250, 50_000, 150_000), n); total < 900*n || total > 1100*n {
		t.Errorf("onoff mean gap %.1f ns, want ~1000", float64(total)/n)
	}
	// Diurnal with zero-mean sinusoids: long-run mean gap near 1000. The
	// rate floor and 1/rate convexity bias the mean slightly; allow 15%.
	if total := drain(NewDiurnal(1, 1000, []int64{1_000_000, 7_000_000}, []float64{0.5, 0.25}), n); total < 850*n || total > 1150*n {
		t.Errorf("diurnal mean gap %.1f ns, want ~1000", float64(total)/n)
	}
}

func TestOnOffBurstHasGaps(t *testing.T) {
	b := NewOnOffBurst(3, 100, 10_000, 90_000)
	var long int
	for i := 0; i < 10_000; i++ {
		if b.NextDelayNs() >= 90_000 {
			long++
		}
	}
	if long == 0 {
		t.Fatal("no off-phase gaps observed")
	}
}
