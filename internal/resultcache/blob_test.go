package resultcache

import (
	"os"
	"path/filepath"
	"testing"

	"addrxlat/internal/faultinject"
)

func TestBlobRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetBlob("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.PutBlob("k1", []byte(`{"p50":123}`))
	got, ok := c.GetBlob("k1")
	if !ok || string(got) != `{"p50":123}` {
		t.Fatalf("round trip: got %q, ok=%v", got, ok)
	}
	// Blob and cell namespaces must not collide on the same key.
	if _, ok := c.Get("k1"); ok {
		t.Fatal("blob entry served as a cell entry")
	}
}

func TestBlobCorruptQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.PutBlob("k", []byte("payload"))
	// Flip a byte in the stored entry.
	p := c.path("blob|k")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetBlob("k"); ok {
		t.Fatal("corrupt blob served")
	}
	q, err := filepath.Glob(filepath.Join(dir, QuarantineDir, "*"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine holds %d files (err %v), want 1", len(q), err)
	}
	_, _, corrupt := c.Stats()
	if corrupt != 1 {
		t.Fatalf("corrupt count %d, want 1", corrupt)
	}
}

func TestBlobTruncateFault(t *testing.T) {
	if err := faultinject.Arm("cache-truncate=kblob@1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.PutBlob("kblob", []byte("some longer payload so truncation breaks the JSON"))
	if _, ok := c.GetBlob("kblob"); ok {
		t.Fatal("truncated blob served")
	}
	_, _, corrupt := c.Stats()
	if corrupt != 1 {
		t.Fatalf("corrupt count %d, want 1", corrupt)
	}
}
