package resultcache

import (
	"encoding/json"
	"hash/crc32"
	"os"
)

// blobEntry is the on-disk format for opaque result blobs (e.g. serve
// sweep points, which carry a whole Counters taxonomy and latency
// quantiles rather than an mm.Costs). The same discipline as cell
// entries: self-describing key, CRC-32C over key+payload verified on
// load, quarantine on any mismatch. Blob keys live in their own "blob|"
// namespace on disk so a blob and a cell under the same canonical key
// never collide.
type blobEntry struct {
	Key  string `json:"key"`
	Blob []byte `json:"blob"` // opaque payload (base64 in the JSON encoding)
	CRC  uint32 `json:"crc"`
}

func (e blobEntry) sum() uint32 {
	s := append(append([]byte(e.Key), '|'), e.Blob...)
	return crc32.Checksum(s, crcTable)
}

// GetBlob looks up an opaque blob by canonical key. Unreadable files are
// misses; unparsable, mismatched, or checksum-failing entries are
// quarantined misses, exactly like Get.
func (c *Cache) GetBlob(key string) ([]byte, bool) {
	path := c.path("blob|" + key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var e blobEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || e.CRC != e.sum() {
		c.quarantine(path)
		c.corrupt.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.Blob, true
}

// PutBlob stores an opaque blob under the canonical key, atomically
// (temp file + rename); failures are silently dropped, matching Put. The
// cache-truncate fault point applies, so blob corruption quarantine is
// drillable with the same plan syntax as cell entries.
func (c *Cache) PutBlob(key string, blob []byte) {
	e := blobEntry{Key: key, Blob: blob}
	e.CRC = e.sum()
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	c.writeEntry("blob|"+key, key, data)
}
