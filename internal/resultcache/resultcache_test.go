package resultcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"addrxlat/internal/experiments"
	"addrxlat/internal/faultinject"
	"addrxlat/internal/mm"
)

var _ experiments.CostCache = (*Cache)(nil)

func TestRoundTrip(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("hit on an empty cache")
	}
	want := mm.Costs{IOs: 3, TLBMisses: 5, DecodingMisses: 7, Accesses: 11}
	c.Put("cell|a", want)
	got, ok := c.Get("cell|a")
	if !ok || got != want {
		t.Fatalf("Get = %+v, %v; want %+v, true", got, ok, want)
	}
	if _, ok := c.Get("cell|b"); ok {
		t.Fatal("hit for a key that was never Put")
	}
}

// entryPath returns the single entry file of a fresh cache.
func entryPath(t *testing.T, c *Cache) string {
	t.Helper()
	entries, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() {
			files = append(files, e.Name())
		}
	}
	if len(files) != 1 {
		t.Fatalf("expected 1 entry file, got %d", len(files))
	}
	return filepath.Join(c.Dir(), files[0])
}

// quarantined returns how many files sit in the quarantine directory.
func quarantined(t *testing.T, c *Cache) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(c.Dir(), QuarantineDir))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

// TestCollisionGuard verifies a file whose stored key disagrees with the
// lookup key (hash collision, hand-edited entry) reads as a miss and is
// quarantined.
func TestCollisionGuard(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Put("cell|a", mm.Costs{IOs: 1})
	path := entryPath(t, c)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["key"] = "cell|other"
	data, _ = json.Marshal(raw)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("cell|a"); ok {
		t.Fatal("mismatched stored key was served as a hit")
	}
	if quarantined(t, c) != 1 {
		t.Fatal("mismatched entry was not quarantined")
	}
}

// TestCorruptEntryQuarantined covers the bit-rot path: an entry whose
// counters were altered (valid JSON, stale checksum) must quarantine, count
// as corrupt, and be recomputable via a fresh Put.
func TestCorruptEntryQuarantined(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := mm.Costs{IOs: 42, TLBMisses: 7, Accesses: 100}
	c.Put("cell|a", want)
	path := entryPath(t, c)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["ios"] = 9999 // flip a counter without fixing the checksum
	data, _ = json.Marshal(raw)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("cell|a"); ok {
		t.Fatal("checksum-failing entry was served as a hit")
	}
	if _, _, corrupt := c.Stats(); corrupt != 1 {
		t.Fatalf("corrupt count = %d, want 1", corrupt)
	}
	if quarantined(t, c) != 1 {
		t.Fatal("corrupt entry was not quarantined")
	}
	// The cell is recomputable: a fresh Put serves again.
	c.Put("cell|a", want)
	if got, ok := c.Get("cell|a"); !ok || got != want {
		t.Fatalf("recomputed cell Get = %+v, %v", got, ok)
	}
}

// TestTruncatedEntryQuarantined covers the torn-write path via fault
// injection: a Put truncated mid-write (unparsable JSON) must read back as
// a quarantined miss, never an error.
func TestTruncatedEntryQuarantined(t *testing.T) {
	defer faultinject.Disarm()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm("cache-truncate=cell|a"); err != nil {
		t.Fatal(err)
	}
	c.Put("cell|a", mm.Costs{IOs: 5})
	faultinject.Disarm()
	if _, ok := c.Get("cell|a"); ok {
		t.Fatal("truncated entry was served as a hit")
	}
	if _, _, corrupt := c.Stats(); corrupt != 1 {
		t.Fatalf("corrupt count = %d, want 1", corrupt)
	}
	if quarantined(t, c) != 1 {
		t.Fatal("truncated entry was not quarantined")
	}
}

// TestStats checks the hit/miss counters cmd/figures reports at exit:
// lookups before any Put are misses, lookups after are hits.
func TestStats(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if h, m, q := c.Stats(); h != 0 || m != 0 || q != 0 {
		t.Fatalf("fresh cache Stats = %d, %d, %d", h, m, q)
	}
	c.Get("absent")
	c.Put("cell|a", mm.Costs{IOs: 1})
	c.Get("cell|a")
	c.Get("cell|a")
	if h, m, q := c.Stats(); h != 2 || m != 1 || q != 0 {
		t.Fatalf("Stats = %d hits, %d misses, %d corrupt; want 2, 1, 0", h, m, q)
	}
}

// TestConcurrentOpenReadWrite hammers one cache directory from two
// goroutines through two independent Cache handles (the same shape as two
// sweeps sharing results/cache), under -race via the Makefile race target.
// Every read must be either a clean miss or the exact value some writer
// put — atomic renames mean torn reads are impossible.
func TestConcurrentOpenReadWrite(t *testing.T) {
	dir := t.TempDir()
	const keys = 32
	const rounds = 200
	value := func(k int) mm.Costs {
		return mm.Costs{IOs: uint64(k) * 3, TLBMisses: uint64(k) * 5, Accesses: uint64(k) + 1}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Open(dir) // concurrent Open of the same dir
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				k := (r*7 + g*13) % keys
				key := fmt.Sprintf("cell|%d", k)
				if got, ok := c.Get(key); ok && got != value(k) {
					errs <- fmt.Errorf("goroutine %d read torn value %+v for %s", g, got, key)
					return
				}
				c.Put(key, value(k))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After the dust settles every key must verify.
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("cell|%d", k)
		if got, ok := c.Get(key); !ok || got != value(k) {
			t.Fatalf("key %s = %+v, %v after concurrent writes", key, got, ok)
		}
	}
	if _, _, corrupt := c.Stats(); corrupt != 0 {
		t.Fatalf("concurrent use quarantined %d entries; writes must be atomic", corrupt)
	}
}
