package resultcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"addrxlat/internal/experiments"
	"addrxlat/internal/mm"
)

var _ experiments.CostCache = (*Cache)(nil)

func TestRoundTrip(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("hit on an empty cache")
	}
	want := mm.Costs{IOs: 3, TLBMisses: 5, DecodingMisses: 7, Accesses: 11}
	c.Put("cell|a", want)
	got, ok := c.Get("cell|a")
	if !ok || got != want {
		t.Fatalf("Get = %+v, %v; want %+v, true", got, ok, want)
	}
	if _, ok := c.Get("cell|b"); ok {
		t.Fatal("hit for a key that was never Put")
	}
}

// TestCollisionGuard verifies a file whose stored key disagrees with the
// lookup key (hash collision, hand-edited entry) reads as a miss.
func TestCollisionGuard(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Put("cell|a", mm.Costs{IOs: 1})
	// Corrupt the stored key in place.
	var path string
	entries, err := os.ReadDir(c.Dir())
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected 1 entry, got %d (%v)", len(entries), err)
	}
	path = filepath.Join(c.Dir(), entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["key"] = "cell|other"
	data, _ = json.Marshal(raw)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("cell|a"); ok {
		t.Fatal("mismatched stored key was served as a hit")
	}
}

// TestStats checks the hit/miss counters cmd/figures reports at exit:
// lookups before any Put are misses, lookups after are hits, and
// corrupted entries count as misses.
func TestStats(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("fresh cache Stats = %d, %d", h, m)
	}
	c.Get("absent")
	c.Put("cell|a", mm.Costs{IOs: 1})
	c.Get("cell|a")
	c.Get("cell|a")
	if h, m := c.Stats(); h != 2 || m != 1 {
		t.Fatalf("Stats = %d hits, %d misses; want 2, 1", h, m)
	}
}
