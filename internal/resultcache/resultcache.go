// Package resultcache is a content-addressed on-disk cache for finished
// simulation cells. The experiments' streaming row drivers look each
// (workload, algorithm, geometry, windows, scale, seed) cell up before
// simulating it; a hit skips the whole simulation and is guaranteed to
// reproduce the same table because the canonical key covers everything
// that determines the counters (see experiments.CostCache).
//
// Entries are one JSON file per cell under the cache directory, named by
// the SHA-256 of the canonical key. The full key is stored inside the
// entry along with a CRC-32C over the counters and is verified on load,
// so a hash collision, a hand-edited file, or a torn/bit-rotted entry
// degrades to a miss, never to wrong numbers. Entries that fail
// verification are moved into <dir>/quarantine/ (preserving the evidence
// for a post-mortem) and recomputed; the corrupt count is surfaced
// through Stats and the run manifests.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"

	"addrxlat/internal/faultinject"
	"addrxlat/internal/mm"
)

// QuarantineDir is the subdirectory of the cache that verification
// failures are moved into.
const QuarantineDir = "quarantine"

// Cache is a directory of cached cells. The zero value is unusable; Open
// it. Get/Put are safe for concurrent use (writes go through an atomic
// rename), matching the experiments.CostCache contract.
type Cache struct {
	dir string

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
}

// Open creates the cache directory if needed and returns the cache.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns how many Get lookups hit, missed, and quarantined a
// corrupt entry since Open. Safe for concurrent use; sweeps snapshot it
// per experiment to attribute traffic. Corrupt lookups are also counted
// as misses (the cell is recomputed either way).
func (c *Cache) Stats() (hits, misses, corrupt uint64) {
	return c.hits.Load(), c.misses.Load(), c.corrupt.Load()
}

// entry is the on-disk cell format. Key keeps the entry self-describing
// (and guards against collisions); the counters mirror mm.Costs; CRC is
// a CRC-32C over the canonical key+counter string, so corruption of any
// field — including a truncated or bit-flipped file that still parses as
// JSON — is detected on load.
type entry struct {
	Key            string `json:"key"`
	IOs            uint64 `json:"ios"`
	TLBMisses      uint64 `json:"tlb_misses"`
	DecodingMisses uint64 `json:"decoding_misses"`
	Accesses       uint64 `json:"accesses"`
	CRC            uint32 `json:"crc"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// sum is the entry checksum: CRC-32C over the canonical rendering of the
// key and counters.
func (e entry) sum() uint32 {
	s := fmt.Sprintf("%s|%d|%d|%d|%d", e.Key, e.IOs, e.TLBMisses, e.DecodingMisses, e.Accesses)
	return crc32.Checksum([]byte(s), crcTable)
}

// path maps a canonical key to its content-addressed file.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// Get implements experiments.CostCache. Unreadable files are misses;
// unparsable, mismatched, or checksum-failing entries are quarantined
// misses.
func (c *Cache) Get(key string) (mm.Costs, bool) {
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		return mm.Costs{}, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || e.CRC != e.sum() {
		c.quarantine(path)
		c.corrupt.Add(1)
		c.misses.Add(1)
		return mm.Costs{}, false
	}
	c.hits.Add(1)
	return mm.Costs{
		IOs:            e.IOs,
		TLBMisses:      e.TLBMisses,
		DecodingMisses: e.DecodingMisses,
		Accesses:       e.Accesses,
	}, true
}

// quarantine moves a failed entry into the quarantine subdirectory so it
// cannot be served again but stays inspectable. Best effort: if the move
// fails the entry is deleted instead (serving it again would repeat the
// verification failure forever).
func (c *Cache) quarantine(path string) {
	qdir := filepath.Join(c.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(path, filepath.Join(qdir, filepath.Base(path))) == nil {
			return
		}
	}
	os.Remove(path)
}

// Put implements experiments.CostCache. The write is atomic (temp file +
// rename) so concurrent sweeps and interrupted runs never leave a torn
// entry; failures are silently dropped — a broken cache must not fail an
// experiment.
func (c *Cache) Put(key string, costs mm.Costs) {
	e := entry{
		Key:            key,
		IOs:            costs.IOs,
		TLBMisses:      costs.TLBMisses,
		DecodingMisses: costs.DecodingMisses,
		Accesses:       costs.Accesses,
	}
	e.CRC = e.sum()
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	c.writeEntry(key, key, data)
}

// writeEntry lands an encoded entry atomically under the content address
// of pathKey. faultKey is the key the cache-truncate fault point matches
// against — a fired fault simulates a torn write (crash mid-write, full
// disk): the entry lands truncated and must be quarantined on the next
// read.
func (c *Cache) writeEntry(pathKey, faultKey string, data []byte) {
	if faultinject.Armed() && faultinject.Fire(faultinject.CacheTruncate, faultKey) {
		data = data[:len(data)/2]
	}
	dst := c.path(pathKey)
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
	}
}
