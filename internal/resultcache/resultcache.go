// Package resultcache is a content-addressed on-disk cache for finished
// simulation cells. The experiments' streaming row drivers look each
// (workload, algorithm, geometry, windows, scale, seed) cell up before
// simulating it; a hit skips the whole simulation and is guaranteed to
// reproduce the same table because the canonical key covers everything
// that determines the counters (see experiments.CostCache).
//
// Entries are one JSON file per cell under the cache directory, named by
// the SHA-256 of the canonical key. The full key is stored inside the
// entry and verified on load, so a (vanishingly unlikely) hash collision
// or a hand-edited file degrades to a miss, never to wrong numbers.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"addrxlat/internal/mm"
)

// Cache is a directory of cached cells. The zero value is unusable; Open
// it. Get/Put are safe for concurrent use (writes go through an atomic
// rename), matching the experiments.CostCache contract.
type Cache struct {
	dir string

	hits   atomic.Uint64
	misses atomic.Uint64
}

// Open creates the cache directory if needed and returns the cache.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns how many Get lookups hit and missed since Open. Safe for
// concurrent use; sweeps snapshot it per experiment to attribute traffic.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// entry is the on-disk cell format. Key keeps the entry self-describing
// (and guards against collisions); the counters mirror mm.Costs.
type entry struct {
	Key            string `json:"key"`
	IOs            uint64 `json:"ios"`
	TLBMisses      uint64 `json:"tlb_misses"`
	DecodingMisses uint64 `json:"decoding_misses"`
	Accesses       uint64 `json:"accesses"`
}

// path maps a canonical key to its content-addressed file.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// Get implements experiments.CostCache. Unreadable, unparsable, or
// mismatched entries are misses.
func (c *Cache) Get(key string) (mm.Costs, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return mm.Costs{}, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key {
		c.misses.Add(1)
		return mm.Costs{}, false
	}
	c.hits.Add(1)
	return mm.Costs{
		IOs:            e.IOs,
		TLBMisses:      e.TLBMisses,
		DecodingMisses: e.DecodingMisses,
		Accesses:       e.Accesses,
	}, true
}

// Put implements experiments.CostCache. The write is atomic (temp file +
// rename) so concurrent sweeps and interrupted runs never leave a torn
// entry; failures are silently dropped — a broken cache must not fail an
// experiment.
func (c *Cache) Put(key string, costs mm.Costs) {
	data, err := json.Marshal(entry{
		Key:            key,
		IOs:            costs.IOs,
		TLBMisses:      costs.TLBMisses,
		DecodingMisses: costs.DecodingMisses,
		Accesses:       costs.Accesses,
	})
	if err != nil {
		return
	}
	dst := c.path(key)
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
	}
}
