GO ?= go

.PHONY: all build test check bench race vet fuzz-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the race detector over the packages that actually spawn
# goroutines: the sweep worker pool, the experiment drivers that use it,
# the shared on-disk result cache, and the concurrent sweep journal.
race:
	$(GO) test -race ./internal/parallel/ ./internal/experiments/ ./internal/resultcache/ ./internal/journal/ ./internal/faultinject/

# fuzz-smoke runs a short fuzzing pass over the trace codec (seeded from
# testdata/fuzz), catching decoder regressions without a dedicated fuzz farm.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=20s ./internal/trace/

# bench runs the hot-path benchmarks with allocation reporting, teeing the
# output into a timestamped file under results/ so runs can be compared
# with benchstat later.
bench:
	@mkdir -p results
	$(GO) test -bench=. -benchmem -run=^$$ . | tee results/bench-$$(date -u +%Y%m%dT%H%M%SZ).txt

# check is the pre-commit gate: vet, full tests, race-detector pass over the
# concurrent packages, a 1-iteration benchmark smoke so the benchmark
# harness itself can't rot, and a 1-iteration streaming-pipeline run under
# the race detector (Source producer goroutines + per-chunk fan-out).
check: vet test race
	$(GO) test -bench=BenchmarkAccess -benchtime=1x -run=^$$ .
	$(GO) test -race -bench=BenchmarkFig1aBimodal -benchtime=1x -run=^$$ .
