GO ?= go

.PHONY: all build test check bench bench-diff race vet fuzz-smoke trace-smoke serve-smoke serve-metrics-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the race detector over the packages that actually spawn
# goroutines: the sweep worker pool, the experiment drivers that use it,
# the shared on-disk result cache, and the concurrent sweep journal.
race:
	$(GO) test -race ./internal/parallel/ ./internal/experiments/ ./internal/resultcache/ ./internal/journal/ ./internal/faultinject/

# fuzz-smoke runs a short fuzzing pass over the trace codec (seeded from
# testdata/fuzz), catching decoder regressions without a dedicated fuzz farm.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=20s ./internal/trace/

# bench runs the hot-path benchmarks with allocation reporting, teeing the
# output into a timestamped file under results/ so runs can be compared
# with benchstat later.
bench:
	@mkdir -p results
	$(GO) test -bench=. -benchmem -run=^$$ . | tee results/bench-$$(date -u +%Y%m%dT%H%M%SZ).txt

# bench-diff reruns the hot-path benchmarks and compares them against a
# named committed BENCH_*.json baseline, failing on a >10% ns/op
# regression in any hot-path benchmark (Access*, Fig1aBimodal, Replay*,
# TraceDecode). The baseline is pinned to the intended anchor — the
# previous perf PR's numbers — rather than the newest file, which after a
# perf PR lands is that PR's own "after" numbers (comparing against
# yourself only measures noise). Each benchmark runs -count=3 and
# benchdiff scores the best (lowest) ns/op per name — baselines are
# best-of numbers, and single runs on a noisy shared box swing 10-40%,
# so comparing one run against a best-of baseline would flap. The
# comparison is hand-rolled (cmd/benchdiff) — benchstat is deliberately
# not a dependency. Report lands in results/bench-diff.txt.
BENCH_BASELINE ?= BENCH_PR6.json
# BENCH_COUNT: runs per benchmark (best-of scoring). 3 is the CI default;
# on a noisy day run `make bench-diff BENCH_COUNT=8` — with too few
# samples a single slow window can fail an untouched benchmark.
BENCH_COUNT ?= 3
bench-diff:
	@mkdir -p results
	$(GO) test -run=^$$ -bench='Access(Batch)?(HugePage|Decoupled|THP|Superpage)|Fig1aBimodal|RowPipeline|ServeStep' -benchtime=1s -count=$(BENCH_COUNT) . > results/bench-raw.txt
	$(GO) test -run=^$$ -bench='ReplayStream|ReplayMaterialized' -benchtime=1s -count=$(BENCH_COUNT) ./internal/workload/ >> results/bench-raw.txt
	$(GO) test -run=^$$ -bench='TraceDecode' -benchtime=1s -count=$(BENCH_COUNT) ./internal/trace/ >> results/bench-raw.txt
	$(GO) run ./cmd/benchdiff -baseline $(BENCH_BASELINE) -out results/bench-diff.txt < results/bench-raw.txt

# trace-smoke runs one instrumented fig1a sweep with the execution tracer
# armed on the pipelined executor (4 workers, sampling on), then validates
# the exported Chrome trace-event JSON — schema, required keys, and
# per-timeline span nesting — with cmd/tracelint. The sweep's tables stay
# byte-identical with tracing on (pinned by TestTraceByteIdentical); this
# target guards the other side: that the export itself stays loadable in
# Perfetto. Artifacts (trace + timeline TSV + manifest) land in
# results/trace-smoke/ and are uploaded by CI.
trace-smoke:
	@mkdir -p results/trace-smoke
	$(GO) run ./cmd/figures -fig f1a -workers 4 -sample 100000 \
		-out results/trace-smoke -manifest results/trace-smoke -cache results/trace-smoke/cache \
		-trace results/trace-smoke/figures.trace.json
	$(GO) run ./cmd/tracelint results/trace-smoke/figures.trace.json
	@test -s results/trace-smoke/f1a-bimodal.timeline.tsv || \
		{ echo "trace-smoke: missing timeline TSV" >&2; exit 1; }

# serve-smoke runs the serving-layer drill end-to-end: the sv1/sv2
# goodput+latency sweep (five offered loads per algorithm, up to 3×
# overload, so admission control and the degradation governor both
# engage), then the same sweep with a serve-burst fault fired on the
# first serve cell (a burst of decoupling-failure IOs, exercising the
# retry/backoff path; the blob cache is bypassed by design while the
# fault is planned, so a clean run can never see a burst-perturbed
# point), and finally sanity checks: every grid point rendered a data
# row, no cell footnoted an error, and the manifest carries the serve
# record (offered-load grid + governor config) that makes the numbers
# auditable. Artifacts land in results/serve-smoke/ and are uploaded by CI.
serve-smoke:
	@rm -rf results/serve-smoke && mkdir -p results/serve-smoke
	$(GO) run ./cmd/figures -fig sv1,sv2 -seed 7 -out results/serve-smoke \
		-manifest results/serve-smoke -cache results/serve-smoke/cache -progress=false
	ADDRXLAT_FAULTS='serve-burst@1' $(GO) run ./cmd/figures -fig sv1 -seed 7 \
		-out results/serve-smoke/burst -manifest results/serve-smoke/burst \
		-cache results/serve-smoke/burst-cache -progress=false
	@test "$$(grep -c '^[0-9]' results/serve-smoke/sv-goodput.tsv)" -eq 20 || \
		{ echo "serve-smoke: sv-goodput.tsv is missing grid rows" >&2; exit 1; }
	@! grep -q 'error' results/serve-smoke/sv-goodput.tsv || \
		{ echo "serve-smoke: sv-goodput.tsv has footnoted error cells" >&2; exit 1; }
	@grep -q '"table": "sv-goodput"' results/serve-smoke/manifest-*.json && \
		grep -q '"governor"' results/serve-smoke/manifest-*.json || \
		{ echo "serve-smoke: manifest is missing the serve record" >&2; exit 1; }

# serve-metrics-smoke runs the serving-telemetry drill: the sv3
# SLO-curve sweep (per-cell window collectors always armed) with the
# execution tracer on, then validates the exported trace — including the
# serve request-lifecycle schema (queued/attempt/backoff spans nested in
# their request span, governor trip/clear instants alternating) — with
# cmd/tracelint, and sanity-checks every telemetry surface: all 20 grid
# rows present in sv-slo.tsv with the verdict columns, a non-empty
# per-window dump in sv-slo.serve.metrics.tsv, and the metrics policy
# (window/budget multiples, exemplar K) recorded in the manifest.
# Artifacts land in results/serve-metrics-smoke/ and are uploaded by CI.
serve-metrics-smoke:
	@rm -rf results/serve-metrics-smoke && mkdir -p results/serve-metrics-smoke
	$(GO) run ./cmd/figures -fig sv3 -seed 7 -out results/serve-metrics-smoke \
		-manifest results/serve-metrics-smoke -cache results/serve-metrics-smoke/cache \
		-trace results/serve-metrics-smoke/figures.trace.json -progress=false
	$(GO) run ./cmd/tracelint results/serve-metrics-smoke/figures.trace.json
	@test "$$(grep -c '^[0-9]' results/serve-metrics-smoke/sv-slo.tsv)" -eq 20 || \
		{ echo "serve-metrics-smoke: sv-slo.tsv is missing grid rows" >&2; exit 1; }
	@grep -q 'max_sustainable_load' results/serve-metrics-smoke/sv-slo.tsv || \
		{ echo "serve-metrics-smoke: sv-slo.tsv lacks the SLO verdict columns" >&2; exit 1; }
	@test "$$(grep -c '^[a-z]' results/serve-metrics-smoke/sv-slo.serve.metrics.tsv)" -ge 20 || \
		{ echo "serve-metrics-smoke: per-window dump is empty or truncated" >&2; exit 1; }
	@grep -q '"metrics_window_mul"' results/serve-metrics-smoke/manifest-*.json || \
		{ echo "serve-metrics-smoke: manifest lacks the metrics policy" >&2; exit 1; }

# check is the pre-commit gate: vet, full tests, race-detector pass over the
# concurrent packages, a 1-iteration benchmark smoke covering the scalar
# AND staged-batch Access kernels so the benchmark harness itself can't
# rot, 1-iteration race-mode runs of the streaming pipeline (Source
# producer goroutines + per-chunk fan-out) and one staged-batch kernel
# (scratch reuse across chunks), and a race-mode smoke of the pipelined
# row executor (Workers=4, lookahead=2: ring publish/release, gate,
# probe delivery, phase clock), the serving-layer overload +
# serve-burst drill (serve-smoke), and the serving-telemetry drill
# (serve-metrics-smoke).
check: vet test race serve-smoke serve-metrics-smoke
	$(GO) test -bench='BenchmarkAccess(Batch)?(HugePage|Decoupled|THP|Superpage)' -benchtime=1x -run=^$$ .
	$(GO) test -race -bench=BenchmarkFig1aBimodal -benchtime=1x -run=^$$ .
	$(GO) test -race -bench=BenchmarkAccessBatchDecoupled -benchtime=1x -run=^$$ .
	$(GO) test -race -run=TestPipelinedRaceSmoke ./internal/experiments/
