module addrxlat

go 1.23
