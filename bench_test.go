// Package addrxlat's root benchmark harness: one testing.B benchmark per
// experiment in DESIGN.md §3. Each benchmark runs a (scaled) instance of
// the corresponding experiment and reports the figure's headline numbers
// as custom metrics, so `go test -bench=. -benchmem` regenerates every
// table and figure in miniature. The cmd/figures binary runs the same
// experiments at larger scale with full parameter sweeps.
package addrxlat

import (
	"strconv"
	"testing"

	"addrxlat/internal/ballsbins"
	"addrxlat/internal/core"
	"addrxlat/internal/experiments"
	"addrxlat/internal/graph500"
	"addrxlat/internal/metrics"
	"addrxlat/internal/mm"
	"addrxlat/internal/policy"
	"addrxlat/internal/serve"
	"addrxlat/internal/workload"
)

// benchScale keeps each bench iteration around a second.
func benchScale() experiments.Scale {
	return experiments.Scale{SpaceDiv: 512, AccessDiv: 500}
}

// reportEndpoints extracts the h=1 row and the largest usable-h row of a
// Figure 1 table into benchmark metrics (the figure's shape in four
// numbers). Saturated rows (RAM smaller than one huge page at aggressive
// scaling) are skipped when picking the upper endpoint.
func reportEndpoints(b *testing.B, tab *experiments.Table) {
	b.Helper()
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return -1
		}
		return v
	}
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	for i := len(tab.Rows) - 1; i >= 0; i-- {
		if tab.Rows[i][1] != "saturated" {
			last = tab.Rows[i]
			break
		}
	}
	b.ReportMetric(parse(first[1]), "ios_h1")
	b.ReportMetric(parse(first[2]), "tlbmiss_h1")
	b.ReportMetric(parse(last[1]), "ios_hmax")
	b.ReportMetric(parse(last[2]), "tlbmiss_hmax")
}

// BenchmarkFig1aBimodal regenerates Figure 1a (bimodal uniform workload).
func BenchmarkFig1aBimodal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig1(experiments.F1aBimodal, benchScale(), uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportEndpoints(b, tab)
		}
	}
}

// BenchmarkRowPipeline measures the pipelined row executor on the
// multi-algorithm Figure 1a row at several Workers settings. workers=1
// is the sequential barrier executor (the pre-pipeline shape); workers=2
// and 4 run the bounded-lookahead chunk ring with per-simulator workers.
// On a single-core host the pipeline can only overlap generation with
// simulation; the per-sim overlap needs real cores, so interpret the
// matrix against GOMAXPROCS.
func BenchmarkRowPipeline(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			s := benchScale()
			s.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig1(experiments.F1aBimodal, s, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1bGraphWalk regenerates Figure 1b (Pareto graph walk).
func BenchmarkFig1bGraphWalk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig1(experiments.F1bGraphWalk, benchScale(), uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportEndpoints(b, tab)
		}
	}
}

// BenchmarkFig1cGraph500 regenerates Figure 1c (graph500 BFS trace).
func BenchmarkFig1cGraph500(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig1(experiments.F1cGraph500, benchScale(), uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportEndpoints(b, tab)
		}
	}
}

// BenchmarkTheorem1SingleChoice regenerates the Theorem 1 failure sweep.
func BenchmarkTheorem1SingleChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Theorem1(1<<15, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 5 {
			b.Fatal("unexpected table shape")
		}
	}
}

// BenchmarkTheorem2Iceberg regenerates the Theorem 2 max-load comparison.
func BenchmarkTheorem2Iceberg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Theorem2(32, []int{1 << 10, 1 << 12}, 10000, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			one, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][3], 64)
			ice, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][7], 64)
			b.ReportMetric(one, "onechoice_peak")
			b.ReportMetric(ice, "iceberg_peak")
		}
	}
}

// BenchmarkTheorem3Decoupling regenerates the Theorem 3 failure sweep.
func BenchmarkTheorem3Decoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Theorem3(1<<15, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 5 {
			b.Fatal("unexpected table shape")
		}
	}
}

// BenchmarkTheorem4Simulation regenerates the Simulation Theorem table.
func BenchmarkTheorem4Simulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Theorem4(benchScale(), uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		// 3 workloads × (5 algorithms + 2 offline-OPT rows).
		if len(tab.Rows) != 21 {
			b.Fatal("unexpected table shape")
		}
	}
}

// BenchmarkEquation2HmaxScaling regenerates the Eq. (2) scaling table.
func BenchmarkEquation2HmaxScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Equation2(64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybrid regenerates the Section 8 hybrid sweep.
func BenchmarkHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Hybrid(benchScale(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoliciesVsOpt regenerates the classical-paging policy table.
func BenchmarkPoliciesVsOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Policies(256, 100000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveBaselines regenerates the THP/superpage comparison.
func BenchmarkAdaptiveBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Adaptive(benchScale(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNestedTranslation regenerates the virtualized-translation table.
func BenchmarkNestedTranslation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Nested(benchScale(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTenants regenerates the shared-TLB contention table.
func BenchmarkTenants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tenants(256, 512, 200000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelatedDesigns regenerates the CoLT/direct-segment table.
func BenchmarkRelatedDesigns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Related(benchScale(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeShare regenerates the execution-time breakdown table.
func BenchmarkTimeShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TimeShare(benchScale(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTLBGeometry regenerates the TLB-organization table.
func BenchmarkTLBGeometry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TLBGeometryStudy(benchScale(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiCore regenerates the per-core-TLB table.
func BenchmarkMultiCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiCoreStudy(256, 1<<11, 200000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossover regenerates the headline best-fixed-h summary.
func BenchmarkCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Crossover(benchScale(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoverageVsW regenerates the Conclusion's w-scaling table.
func BenchmarkCoverageVsW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CoverageVsW(1 << 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailureProbability regenerates the w.h.p. validation table
// (fewer seeds than the CLI run, for bench-friendly latency).
func BenchmarkFailureProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FailureProbability([]uint{12, 14}, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIcebergThreshold is the ablation bench for the front-bin
// threshold factor: peak load of Iceberg[2] at thresholds 0.9λ, 1.05λ
// (the default) and 1.3λ.
func BenchmarkIcebergThreshold(b *testing.B) {
	const n, lambda = 1 << 12, 32
	const m = n * lambda
	for _, factor := range []float64{0.9, 1.05, 1.3} {
		b.Run(strconv.FormatFloat(factor, 'f', 2, 64), func(b *testing.B) {
			peak := 0
			for i := 0; i < b.N; i++ {
				th := int(float64(lambda) * factor)
				if th < 1 {
					th = 1
				}
				g := ballsbins.NewGame(ballsbins.NewIceberg(n, 2, th, uint64(i)+1), m, uint64(i)+99)
				g.Churn(10000)
				peak = g.PeakLoad()
			}
			b.ReportMetric(float64(peak), "peak_load")
		})
	}
}

// --- Microbenchmarks of the hot paths behind the experiments ---

// BenchmarkAccessHugePage measures one baseline-simulator access.
func BenchmarkAccessHugePage(b *testing.B) {
	gen, err := workload.NewBimodal(1<<12, 1<<18, 0.9999, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := workload.Take(gen, 1<<20)
	alg, err := mm.NewHugePage(mm.HugePageConfig{
		HugePageSize: 64, TLBEntries: 1536, RAMPages: 1 << 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Access(reqs[i&(1<<20-1)])
	}
}

// BenchmarkAccessDecoupled measures one Z access (TLB + decode + Y).
func BenchmarkAccessDecoupled(b *testing.B) {
	gen, err := workload.NewBimodal(1<<12, 1<<18, 0.9999, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := workload.Take(gen, 1<<20)
	z, err := mm.NewDecoupled(mm.DecoupledConfig{
		Alloc:        core.IcebergAlloc,
		RAMPages:     1 << 16,
		VirtualPages: 1 << 18,
		TLBEntries:   1536,
		ValueBits:    64,
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Access(reqs[i&(1<<20-1)])
	}
}

// BenchmarkAccessTHP measures one adaptive-THP access (region tracking,
// promotion checks, TLB).
func BenchmarkAccessTHP(b *testing.B) {
	gen, err := workload.NewBimodal(1<<12, 1<<18, 0.9999, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := workload.Take(gen, 1<<20)
	alg, err := mm.NewTHP(mm.THPConfig{
		HugePageSize: 64, TLBEntries: 1536, RAMPages: 1 << 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Access(reqs[i&(1<<20-1)])
	}
}

// BenchmarkAccessSuperpage measures one reservation-based superpage access.
func BenchmarkAccessSuperpage(b *testing.B) {
	gen, err := workload.NewBimodal(1<<12, 1<<18, 0.9999, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := workload.Take(gen, 1<<20)
	alg, err := mm.NewSuperpage(mm.SuperpageConfig{
		HugePageSize: 64, TLBEntries: 1536, RAMPages: 1 << 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Access(reqs[i&(1<<20-1)])
	}
}

// benchAccessBatch drives a staged batch kernel in experiment-sized chunks
// through one reused scratch, reporting per-access cost. ReportAllocs pins
// the steady-state zero-allocation contract of the staged paths.
func benchAccessBatch(b *testing.B, alg mm.Algorithm) {
	gen, err := workload.NewBimodal(1<<12, 1<<18, 0.9999, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := workload.Take(gen, 1<<20)
	sb, ok := alg.(mm.StagedBatcher)
	if !ok {
		b.Fatalf("%s: not a StagedBatcher", alg.Name())
	}
	sc := &mm.Scratch{}
	const chunk = 4096
	sb.AccessBatchScratch(reqs[:chunk], sc) // size the scratch outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += chunk {
		lo := i & (1<<20 - 1)
		n := chunk
		if rem := b.N - i; rem < n {
			n = rem
		}
		sb.AccessBatchScratch(reqs[lo:lo+n], sc)
	}
}

// BenchmarkAccessBatchHugePage measures the fused columnar stack kernel.
func BenchmarkAccessBatchHugePage(b *testing.B) {
	alg, err := mm.NewHugePage(mm.HugePageConfig{
		HugePageSize: 64, TLBEntries: 1536, RAMPages: 1 << 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchAccessBatch(b, alg)
}

// BenchmarkAccessBatchDecoupled measures the two-pass column split (RAM/
// decode pass, then the TLB probe column).
func BenchmarkAccessBatchDecoupled(b *testing.B) {
	z, err := mm.NewDecoupled(mm.DecoupledConfig{
		Alloc:        core.IcebergAlloc,
		RAMPages:     1 << 16,
		VirtualPages: 1 << 18,
		TLBEntries:   1536,
		ValueBits:    64,
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchAccessBatch(b, z)
}

// BenchmarkAccessBatchTHP measures the fused in-order THP kernel.
func BenchmarkAccessBatchTHP(b *testing.B) {
	alg, err := mm.NewTHP(mm.THPConfig{
		HugePageSize: 64, TLBEntries: 1536, RAMPages: 1 << 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchAccessBatch(b, alg)
}

// BenchmarkAccessBatchSuperpage measures the fused reservation-based
// superpage kernel.
func BenchmarkAccessBatchSuperpage(b *testing.B) {
	alg, err := mm.NewSuperpage(mm.SuperpageConfig{
		HugePageSize: 64, TLBEntries: 1536, RAMPages: 1 << 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchAccessBatch(b, alg)
}

// BenchmarkGraph500TraceGeneration measures building the Figure 1c input.
func BenchmarkGraph500TraceGeneration(b *testing.B) {
	g, err := graph500.Generate(graph500.Config{Scale: 14, EdgeFactor: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	root := g.HighestDegreeVertex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := g.BFSTrace(root, graph500.DefaultLayout(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(res.Trace)), "trace_len")
		}
	}
}

// BenchmarkOptBelady measures the offline-optimal baseline used in policy
// comparisons.
func BenchmarkOptBelady(b *testing.B) {
	gen, err := workload.NewZipf(1<<14, 1.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := workload.Take(gen, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy.OptMisses(reqs, 1<<10)
	}
}

// benchServeSim builds an overloaded serving run (2.5× capacity, governor
// armed) over a huge-page simulator, optionally with the virtual-time
// metrics collector attached. Requests is sized so one build outlasts a
// full -benchtime=1s measurement.
func benchServeSim(b *testing.B, seed uint64, armed bool) *serve.Sim {
	b.Helper()
	alg, err := mm.NewHugePage(mm.HugePageConfig{HugePageSize: 1, TLBEntries: 64, RAMPages: 1 << 12, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewUniform(1<<14, seed+1)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := serve.New(serve.Config{
		Seed:        seed,
		Requests:    1_000_000,
		BlockPages:  64,
		QueueCap:    128,
		MaxAttempts: 3,
		RetryBaseNs: 1000,
		Governor:    serve.GovernorConfig{WindowNs: 1, QueueHigh: 96, MissNum: 1, MissDen: 5, RecoverDepth: 24, DegradedDiv: 4},
	}, alg, gen, &mm.Scratch{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	mean := sim.Calibrate(1000)
	sim.SetDeadlineNs(150 * mean)
	sim.SetGovernorWindowNs(30 * mean)
	sim.SetArrivals(workload.NewPoisson(seed+2, float64(mean)/2.5))
	if armed {
		sim.ArmMetrics(metrics.Config{WidthNs: 64 * mean, BudgetNs: 40 * mean, Exemplars: 5})
	}
	return sim
}

// BenchmarkServeStep measures the serving event loop's per-event cost,
// disarmed and with the metrics collector armed — the armed column is
// the observability tax on the hot path and must stay allocation-free
// (guarded by make bench-diff alongside the access-path benchmarks).
func BenchmarkServeStep(b *testing.B) {
	for _, armed := range []bool{false, true} {
		name := "disarmed"
		if armed {
			name = "armed"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			sim := benchServeSim(b, 1, armed)
			b.ResetTimer()
			for steps := 0; steps < b.N; steps++ {
				if !sim.Step() {
					b.StopTimer()
					sim = benchServeSim(b, uint64(steps)+2, armed)
					b.StartTimer()
				}
			}
		})
	}
}
