// Package addrxlat reproduces "Paging and the Address-Translation
// Problem" (Bender et al., SPAA 2021): huge-page decoupling, low-
// associativity RAM allocation with compact TLB encodings, the Simulation
// Theorem's combined algorithm Z, and the trace-driven simulator behind
// the paper's experiments.
//
// The implementation lives under internal/ (see README.md for the map);
// the root package carries the benchmark harness that regenerates every
// table and figure (bench_test.go). Executables are under cmd/ and
// runnable examples under examples/.
package addrxlat
