// Graphwalk: the Figure 1b workload end-to-end — a Pareto random walk over
// a page graph (PageRank-like access pattern), compared across the h=1
// baseline, a huge-page baseline, and the decoupled algorithm.
package main

import (
	"fmt"
	"log"

	"addrxlat/internal/core"
	"addrxlat/internal/mm"
	"addrxlat/internal/trace"
	"addrxlat/internal/workload"
)

func main() {
	const (
		totalPages = 1 << 18 // 1 GiB virtual space
		ramPages   = 1 << 17 // 512 MiB RAM (half the space, as in Fig 1b)
		tlbEntries = 64
		nAccesses  = 1_500_000
	)
	gen, err := workload.NewGraphWalk(totalPages, 0.01, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random walk: %d-page graph, out-degree %d, Pareto α=0.01\n",
		totalPages, gen.OutDegree())

	warm := workload.Take(gen, nAccesses)
	meas := workload.Take(gen, nAccesses)
	fmt.Printf("trace stats: %s\n\n", trace.Summarize(meas))

	z, err := mm.NewDecoupled(mm.DecoupledConfig{
		Alloc:        core.IcebergAlloc,
		RAMPages:     ramPages,
		VirtualPages: totalPages,
		TLBEntries:   tlbEntries,
		ValueBits:    64,
		Seed:         5,
	})
	if err != nil {
		log.Fatal(err)
	}
	hmax := uint64(z.Params().HMax)

	algos := []mm.Algorithm{}
	for _, h := range []uint64{1, hmax, 256} {
		a, err := mm.NewHugePage(mm.HugePageConfig{
			HugePageSize: h, TLBEntries: tlbEntries, RAMPages: ramPages, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		algos = append(algos, a)
	}
	algos = append(algos, z)

	fmt.Printf("%-34s %12s %12s %14s\n", "algorithm", "IOs", "TLB misses", "total (ε=.01)")
	for _, alg := range algos {
		c := mm.RunWarm(alg, warm, meas)
		fmt.Printf("%-34s %12d %12d %14.1f\n", alg.Name(), c.IOs, c.TLBMisses, c.Total(0.01))
	}
}
