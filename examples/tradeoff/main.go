// Tradeoff: a miniature Figure 1a — sweep the physical huge-page size on a
// bimodal workload and watch IOs explode while TLB misses collapse. This
// is the tension huge-page decoupling resolves.
package main

import (
	"fmt"
	"log"

	"addrxlat/internal/mm"
	"addrxlat/internal/workload"
)

func main() {
	const (
		hotPages   = 1 << 12 // 16 MiB hot set
		totalPages = 1 << 18 // 1 GiB virtual space
		ramPages   = 1 << 16 // 256 MiB RAM
		tlbEntries = 64
		nAccesses  = 2_000_000
	)

	gen, err := workload.NewBimodal(hotPages, totalPages, 0.9999, 1)
	if err != nil {
		log.Fatal(err)
	}
	warm := workload.Take(gen, nAccesses)
	meas := workload.Take(gen, nAccesses)

	fmt.Printf("bimodal workload: %d hot pages in %d-page space, RAM %d pages, TLB %d entries\n\n",
		hotPages, totalPages, ramPages, tlbEntries)
	fmt.Printf("%-6s %12s %12s %14s\n", "h", "IOs", "TLB misses", "total (ε=.01)")
	for h := uint64(1); h <= 1024; h *= 2 {
		alg, err := mm.NewHugePage(mm.HugePageConfig{
			HugePageSize: h,
			TLBEntries:   tlbEntries,
			RAMPages:     ramPages,
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		c := mm.RunWarm(alg, warm, meas)
		fmt.Printf("%-6d %12d %12d %14.1f\n", h, c.IOs, c.TLBMisses, c.Total(0.01))
	}
	fmt.Println("\nno single h wins on both columns — that is the paper's Figure 1.")
}
