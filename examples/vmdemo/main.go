// Vmdemo: the library consumed as a virtual-memory subsystem — an address
// space with mmap/munmap and demand paging, charged through the decoupled
// memory-management algorithm, with the radix page table tracking
// translations underneath.
package main

import (
	"fmt"
	"log"

	"addrxlat/internal/core"
	"addrxlat/internal/hashutil"
	"addrxlat/internal/mm"
	"addrxlat/internal/vm"
)

func main() {
	z, err := mm.NewDecoupled(mm.DecoupledConfig{
		Alloc:        core.IcebergAlloc,
		RAMPages:     1 << 16, // 256 MiB
		VirtualPages: 1 << 20, // 4 GiB
		TLBEntries:   256,
		ValueBits:    64,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	as, err := vm.New(1<<20, z)
	if err != nil {
		log.Fatal(err)
	}

	// An application: a heap, a big matrix, and a scratch buffer.
	heap, err := as.Mmap(1 << 12) // 16 MiB
	if err != nil {
		log.Fatal(err)
	}
	matrix, err := as.Mmap(1 << 15) // 128 MiB
	if err != nil {
		log.Fatal(err)
	}
	scratch, err := as.Mmap(1 << 10) // 4 MiB
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped: heap=%#x matrix=%#x scratch=%#x (%d pages total)\n",
		heap, matrix, scratch, as.MappedPages())

	// Sequential matrix scan (good locality).
	if err := as.AccessRange(matrix, (1<<15)*vm.PageBytes); err != nil {
		log.Fatal(err)
	}
	// Random heap traffic (pointer chasing).
	r := hashutil.NewRNG(2)
	for i := 0; i < 500000; i++ {
		off := r.Uint64n(1<<12) * vm.PageBytes
		if err := as.Access(heap + off); err != nil {
			log.Fatal(err)
		}
	}
	// Scratch reuse.
	for round := 0; round < 20; round++ {
		if err := as.AccessRange(scratch, (1<<10)*vm.PageBytes); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("touched %d of %d mapped pages\n", as.TouchedPages(), as.MappedPages())
	fmt.Printf("page table: %d entries, %d walks, %d node visits (%.2f visits/walk)\n",
		as.PageTable().Entries(), as.PageTable().Walks(), as.PageTable().NodeVisits(),
		float64(as.PageTable().NodeVisits())/float64(as.PageTable().Walks()))
	fmt.Printf("cost model: %s  (total C = %.1f at ε=0.01)\n", as.Costs(), as.Costs().Total(0.01))

	// Unmap the matrix; its translations disappear.
	if err := as.Munmap(matrix); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after munmap(matrix): %d page-table entries, %d mapped pages\n",
		as.PageTable().Entries(), as.MappedPages())

	// A wild access now faults.
	if err := as.Access(matrix); err != nil {
		fmt.Printf("access to unmapped matrix: %v (as expected)\n", err)
	}
}
