// Quickstart: build a huge-page decoupling scheme, page some pages in and
// out, and decode physical addresses from the compact w-bit TLB values —
// the paper's core machinery in ~50 lines.
package main

import (
	"fmt"
	"log"

	"addrxlat/internal/core"
)

func main() {
	// A machine with 1 Mi physical pages (4 GiB at 4 KiB/page), 16 Mi
	// virtual pages, and 64-bit TLB values — and the headline Iceberg
	// (Theorem 3) allocation scheme.
	params, err := core.DeriveParams(core.IcebergAlloc, 1<<20, 1<<24, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived decoupling parameters:")
	fmt.Println(" ", params)
	fmt.Printf("  => one TLB entry covers %d pages using %d bits per page code\n\n",
		params.HMax, params.BitsPerPage)

	scheme, err := core.NewScheme(params, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The RAM-replacement policy (here: us, by hand) pages in three pages
	// of huge page 0 and one page of huge page 7.
	h := uint64(params.HMax)
	pagesIn := []uint64{0, 1, 3, 7*h + 2}
	for _, v := range pagesIn {
		if ok := scheme.PageIn(v); !ok {
			log.Fatalf("paging failure on %d (w.h.p. impossible at this load)", v)
		}
	}

	// The TLB-decoding function f recovers φ(v) from (v, ψ(u)) alone.
	fmt.Println("decoding against live TLB values:")
	for _, v := range append(pagesIn, 2, 7*h+3) {
		u := params.HugePage(v)
		phys := scheme.LookupIn(v, scheme.Value(u))
		if phys == core.NullAddress {
			fmt.Printf("  f(v=%-9d, ψ(%d)) = -1        (not resident)\n", v, u)
		} else {
			fmt.Printf("  f(v=%-9d, ψ(%d)) = frame %-9d (bucket %d, slot %d)\n",
				v, u, phys, phys/uint64(params.B), phys%uint64(params.B))
		}
	}

	// Page one out; its slot in the TLB value becomes the absent sentinel.
	scheme.PageOut(1)
	fmt.Println("\nafter paging out v=1:")
	fmt.Printf("  f(v=1, ψ(0)) = %d (NullAddress)\n", int64(scheme.Lookup(1)))
	fmt.Printf("  resident pages: %d, paging failures so far: %d\n",
		scheme.Resident(), scheme.TotalFailures())
}
