// Decoupling: the Simulation Theorem (Theorem 4) live. Build Z from a
// TLB-optimizing side X and an IO-optimizing side Y via huge-page
// decoupling, and show that Z simultaneously matches the best TLB-miss
// count of any physical-huge-page configuration and the best IO count.
package main

import (
	"fmt"
	"log"

	"addrxlat/internal/core"
	"addrxlat/internal/mm"
	"addrxlat/internal/policy"
	"addrxlat/internal/workload"
)

func main() {
	const (
		hotPages   = 1 << 12
		totalPages = 1 << 18
		ramPages   = 1 << 16
		tlbEntries = 64
		nAccesses  = 2_000_000
	)
	gen, err := workload.NewBimodal(hotPages, totalPages, 0.9999, 3)
	if err != nil {
		log.Fatal(err)
	}
	warm := workload.Take(gen, nAccesses)
	meas := workload.Take(gen, nAccesses)

	// Z: the decoupled algorithm with the Iceberg (Theorem 3) scheme.
	z, err := mm.NewDecoupled(mm.DecoupledConfig{
		Alloc:        core.IcebergAlloc,
		RAMPages:     ramPages,
		VirtualPages: totalPages,
		TLBEntries:   tlbEntries,
		ValueBits:    64,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	hmax := uint64(z.Params().HMax)
	fmt.Printf("decoupling parameters: %s\n\n", z.Params())

	// The two physical-huge-page baselines Z must beat simultaneously.
	h1, err := mm.NewHugePage(mm.HugePageConfig{
		HugePageSize: 1, TLBEntries: tlbEntries, RAMPages: ramPages, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	hBig, err := mm.NewHugePage(mm.HugePageConfig{
		HugePageSize: hmax, TLBEntries: tlbEntries, RAMPages: ramPages, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The side optimizers of the theorem statement (Lemma 1's paging
	// problems).
	x, err := mm.NewTLBOnly(hmax, tlbEntries, policy.LRUKind, 7)
	if err != nil {
		log.Fatal(err)
	}
	y, err := mm.NewRAMOnly(z.Params().MaxResident, policy.LRUKind, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-34s %12s %12s %14s\n", "algorithm", "IOs", "TLB misses", "total (ε=.01)")
	for _, alg := range []mm.Algorithm{h1, hBig, x, y, z} {
		c := mm.RunWarm(alg, warm, meas)
		fmt.Printf("%-34s %12d %12d %14.1f\n", alg.Name(), c.IOs, c.TLBMisses, c.Total(0.01))
	}
	fmt.Printf("\npaging failures in Z: %d (the n/poly(P) slack of Theorem 4)\n",
		z.Scheme().TotalFailures())
	fmt.Println("Z pairs the huge-page baseline's TLB column with the h=1 baseline's IO column.")
}
