// Overhead: the paper's motivating arithmetic, end to end. A phased
// workload (init scan → pointer-chasing compute → scan → …) runs under
// the h=1 baseline and the decoupled algorithm; the timing model then
// converts the cost counters into execution-time breakdowns across
// storage generations, showing (a) translation overhead growing as
// storage gets faster and (b) decoupling clawing it back.
package main

import (
	"fmt"
	"log"

	"addrxlat/internal/core"
	"addrxlat/internal/mm"
	"addrxlat/internal/timing"
	"addrxlat/internal/workload"
)

func main() {
	const (
		vPages   = 1 << 18
		ramPages = 1 << 16
		entries  = 128
		n        = 1_500_000
	)
	scan, err := workload.NewSequential(1 << 14)
	if err != nil {
		log.Fatal(err)
	}
	chase, err := workload.NewZipf(1<<16, 1.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	phased, err := workload.NewPhased([]workload.Phase{
		{Gen: scan, Length: 50_000},
		{Gen: chase, Length: 200_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	warm := workload.Take(phased, n)
	meas := workload.Take(phased, n)
	fmt.Printf("workload: %s, %d measured accesses (%d phase switches)\n\n",
		phased.Name(), n, phased.Switches())

	h1, err := mm.NewHugePage(mm.HugePageConfig{
		HugePageSize: 1, TLBEntries: entries, RAMPages: ramPages, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	z, err := mm.NewDecoupled(mm.DecoupledConfig{
		Alloc: core.IcebergAlloc, RAMPages: ramPages, VirtualPages: vPages,
		TLBEntries: entries, ValueBits: 64, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	storages := []struct {
		name  string
		table timing.CostTable
	}{
		{"disk  (5 ms)", timing.DiskStorage},
		{"nvme (20 µs)", timing.NVMeStorage},
		{"cxl   (1 µs)", timing.CXLStorage},
	}
	for _, alg := range []mm.Algorithm{h1, z} {
		costs := mm.RunWarm(alg, warm, meas)
		fmt.Printf("%s\n  counters: %s\n", alg.Name(), costs)
		for _, st := range storages {
			b, err := timing.Estimate(timing.Counters{
				Accesses:       costs.Accesses,
				TLBMisses:      costs.TLBMisses,
				DecodingMisses: costs.DecodingMisses,
				IOs:            costs.IOs,
			}, st.table)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-14s address translation %5.1f%% of time, paging %5.1f%%\n",
				st.name, 100*b.ATFraction(), 100*b.IOFraction())
		}
		fmt.Println()
	}
	fmt.Println("faster storage inflates the translation share; decoupling deflates it.")
}
