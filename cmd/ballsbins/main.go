// Command ballsbins runs the dynamic balls-and-bins experiments behind
// Theorem 2: the peak maximum load of OneChoice, Greedy[d] and Iceberg[2]
// under insert/delete churn against an oblivious adversary.
//
// Usage:
//
//	ballsbins                      # default sweep
//	ballsbins -lambda 64 -bins 4096 -churn 100000
//	ballsbins -sweep               # table across bin counts (Theorem 2 shape)
package main

import (
	"flag"
	"fmt"
	"os"

	"addrxlat/internal/ballsbins"
	"addrxlat/internal/experiments"
)

func main() {
	var (
		lambda = flag.Int("lambda", 32, "average load λ = balls/bins")
		bins   = flag.Int("bins", 1<<12, "number of bins (single-run mode)")
		churn  = flag.Int("churn", 50000, "churn steps (delete+insert pairs)")
		seed   = flag.Uint64("seed", 1, "random seed")
		sweep  = flag.Bool("sweep", false, "sweep bin counts and print the Theorem 2 table")
		reins  = flag.Bool("reinsert", false, "use the re-insertion adversary")
		hist   = flag.Bool("hist", false, "print the final load histogram per rule")
	)
	flag.Parse()

	if *sweep {
		tab, err := experiments.Theorem2(*lambda, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}, *churn, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ballsbins: %v\n", err)
			os.Exit(1)
		}
		if err := tab.WriteTSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ballsbins: %v\n", err)
			os.Exit(1)
		}
		return
	}

	m := *bins * *lambda
	rules := []ballsbins.Rule{
		ballsbins.NewOneChoice(*bins, *seed),
		ballsbins.NewGreedy(*bins, 2, *seed),
		ballsbins.NewGreedy(*bins, 3, *seed),
		ballsbins.NewIceberg(*bins, 2, ballsbins.DefaultThreshold(m, *bins), *seed),
	}
	fmt.Printf("n=%d bins, m=%d balls (λ=%d), %d churn steps, reinsert=%v\n\n",
		*bins, m, *lambda, *churn, *reins)
	for _, r := range rules {
		g := ballsbins.NewGame(r, m, *seed+7)
		if *reins {
			g.ChurnReinsert(*churn)
		} else {
			g.Churn(*churn)
		}
		fmt.Println(g.Summarize())
		fmt.Printf("  median load %d, p99.9 load %d\n",
			ballsbins.Quantile(r, 0.5), ballsbins.Quantile(r, 0.999))
		if ib, ok := r.(*ballsbins.Iceberg); ok {
			fmt.Printf("  iceberg detail: threshold=%d front_inserts=%d back_inserts=%d max_back_load=%d\n",
				ib.Threshold(), ib.FrontInsertions(), ib.BackInsertions(), ib.MaxBackLoad())
		}
		if *hist {
			fmt.Print(ballsbins.FormatHistogram(ballsbins.LoadHistogram(r), 50))
		}
	}
}
