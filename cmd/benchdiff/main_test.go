package main

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// benchOutput is a realistic -count 3 `go test -bench` stream: three
// samples per benchmark, interleaved with the noise lines go test prints.
const benchOutput = `goos: linux
goarch: amd64
pkg: addrxlat/internal/mm
BenchmarkAccessHugePage-8   	92881926	        12.66 ns/op	       0 B/op
BenchmarkAccessHugePage-8   	90011223	        13.10 ns/op	       0 B/op
BenchmarkAccessHugePage-8   	91500000	        12.90 ns/op	       0 B/op
BenchmarkReplayDecode-8     	  500000	      2100 ns/op
BenchmarkReplayDecode-8     	  490000	      2400 ns/op
BenchmarkReplayDecode-8     	  510000	      2000 ns/op
BenchmarkColdExtra-8        	 1000000	      1000 ns/op
PASS
ok  	addrxlat/internal/mm	4.2s
`

func TestParseBenchCollectsAllSamples(t *testing.T) {
	got, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got["BenchmarkAccessHugePage"]); n != 3 {
		t.Fatalf("AccessHugePage samples = %d, want 3", n)
	}
	if n := len(got["BenchmarkColdExtra"]); n != 1 {
		t.Fatalf("ColdExtra samples = %d, want 1", n)
	}
	min, max, spread := sampleRange(got["BenchmarkReplayDecode"])
	if min != 2000 || max != 2400 {
		t.Fatalf("ReplayDecode range = %g..%g, want 2000..2400", min, max)
	}
	if want := (2400.0 - 2000.0) / 2000.0; math.Abs(spread-want) > 1e-12 {
		t.Fatalf("ReplayDecode spread = %g, want %g", spread, want)
	}
}

func TestDiffSpreadAndGeomean(t *testing.T) {
	base := baseline{
		PR:   "BENCH_TEST",
		Date: "2026-01-01",
		Benchmarks: map[string]entry{
			"BenchmarkAccessHugePage": {After: &metrics{NsPerOp: 12.0}},
			"BenchmarkReplayDecode":   {After: &metrics{NsPerOp: 2000}},
			"BenchmarkGoneMissing":    {After: &metrics{NsPerOp: 50}},
		},
	}
	current, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	hot := regexp.MustCompile(`^BenchmarkAccess`)
	rep := diff(base, current, hot, 0.10)

	if rep.Compared != 2 {
		t.Fatalf("Compared = %d, want 2", rep.Compared)
	}
	byName := map[string]row{}
	for _, r := range rep.Rows {
		byName[r.Name] = r
	}

	// Comparison uses the best (minimum) sample.
	access := byName["BenchmarkAccessHugePage"]
	if access.NowNs != 12.66 || access.MinNs != 12.66 || access.MaxNs != 13.10 {
		t.Fatalf("AccessHugePage now/min/max = %g/%g/%g", access.NowNs, access.MinNs, access.MaxNs)
	}
	if access.Samples != 3 {
		t.Fatalf("AccessHugePage samples = %d, want 3", access.Samples)
	}
	// 12.66 vs 12.0 baseline = +5.5% < 10% threshold: ok despite hot.
	if access.Verdict != "ok" || !access.Hot {
		t.Fatalf("AccessHugePage verdict=%q hot=%v", access.Verdict, access.Hot)
	}

	decode := byName["BenchmarkReplayDecode"]
	if want := 0.20; math.Abs(decode.Spread-want) > 1e-12 {
		t.Fatalf("ReplayDecode spread = %g, want %g", decode.Spread, want)
	}
	// 2000 vs 2000: delta 0, not a regression even though spread is 20%.
	if decode.Verdict != "ok" {
		t.Fatalf("ReplayDecode verdict = %q", decode.Verdict)
	}

	if rep.MaxSpreadOf != "BenchmarkReplayDecode" || math.Abs(rep.MaxSpread-0.20) > 1e-12 {
		t.Fatalf("MaxSpread = %g of %q", rep.MaxSpread, rep.MaxSpreadOf)
	}
	if len(rep.Missing) != 1 || rep.Missing[0].Name != "BenchmarkGoneMissing" {
		t.Fatalf("Missing = %+v", rep.Missing)
	}
	cold := byName["BenchmarkColdExtra"]
	if cold.Verdict != "no baseline" || cold.Spread != 0 {
		t.Fatalf("ColdExtra verdict=%q spread=%g", cold.Verdict, cold.Spread)
	}
}

func TestDiffFlagsHotRegression(t *testing.T) {
	base := baseline{
		Benchmarks: map[string]entry{
			"BenchmarkAccessHugePage": {After: &metrics{NsPerOp: 10.0}},
		},
	}
	current := map[string][]float64{"BenchmarkAccessHugePage": {12.0, 12.5}}
	hot := regexp.MustCompile(`^BenchmarkAccess`)
	rep := diff(base, current, hot, 0.10)
	if len(rep.Regressions) != 1 || rep.Regressions[0] != "BenchmarkAccessHugePage" {
		t.Fatalf("Regressions = %v", rep.Regressions)
	}
	if rep.Rows[0].Verdict != "REGRESSION" {
		t.Fatalf("verdict = %q", rep.Rows[0].Verdict)
	}
}

func TestRenderShowsSpread(t *testing.T) {
	base := baseline{
		PR:   "BENCH_TEST",
		Date: "2026-01-01",
		Benchmarks: map[string]entry{
			"BenchmarkReplayDecode": {After: &metrics{NsPerOp: 2000}},
		},
	}
	current := map[string][]float64{
		"BenchmarkReplayDecode": {2100, 2400, 2000},
		"BenchmarkColdExtra":    {1000},
	}
	rep := diff(base, current, regexp.MustCompile(`^$a`), 0.10)
	text := render(rep)
	if !strings.Contains(text, "min..max") {
		t.Fatalf("render missing spread column header:\n%s", text)
	}
	if !strings.Contains(text, "2000..2400 ±20%") {
		t.Fatalf("render missing ReplayDecode spread cell:\n%s", text)
	}
	if !strings.Contains(text, "worst sample spread: ±20% (BenchmarkReplayDecode)") {
		t.Fatalf("render missing max-spread summary:\n%s", text)
	}
	// Single-sample rows show no spread (nothing to spread over).
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "BenchmarkColdExtra") && !strings.Contains(line, "-") {
			t.Fatalf("ColdExtra row should render '-' for spread: %q", line)
		}
	}
}

// TestNewestBaselineMissing pins the benign no-baseline state: an empty
// directory yields errNoBaselines (so main exits 0 with a message rather
// than painting a fresh clone as a perf failure), and the error names
// the directory it searched.
func TestNewestBaselineMissing(t *testing.T) {
	dir := t.TempDir()
	_, err := newestBaseline(dir)
	if !errors.Is(err, errNoBaselines) {
		t.Fatalf("newestBaseline(%s) err = %v, want errNoBaselines", dir, err)
	}
	if !strings.Contains(err.Error(), dir) {
		t.Fatalf("error %q does not name the searched directory %s", err, dir)
	}
}

// TestNewestBaselinePicksLast checks the selection rule: with several
// BENCH_*.json present, the lexicographically last one wins.
func TestNewestBaselinePicksLast(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR1.json", "BENCH_PR3.json", "BENCH_PR2.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := newestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_PR3.json" {
		t.Fatalf("newestBaseline picked %s, want BENCH_PR3.json", got)
	}
}
