// Command benchdiff compares `go test -bench` output against a committed
// BENCH_*.json baseline — a benchstat-style report without the external
// dependency. It reads benchmark output on stdin, matches benchmark names
// against the baseline's "benchmarks" map (the after.ns_per_op numbers),
// and prints a delta table plus a geomean summary. Benchmarks matching the
// -hot pattern fail the run (exit 1) when they regress by more than
// -threshold; everything else is report-only. With -json the report is
// emitted as a machine-readable document instead of the table. -baseline
// names the anchor explicitly (what perf PRs should do — the Makefile
// pins one); without it the newest BENCH_*.json in the working directory
// is compared against.
//
// Usage:
//
//	go test -run='^$' -bench=. . | go run ./cmd/benchdiff -baseline BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type metrics struct {
	NsPerOp float64 `json:"ns_per_op"`
}

type entry struct {
	After *metrics `json:"after"`
}

type baseline struct {
	PR         string           `json:"pr"`
	Date       string           `json:"date"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// row is one benchmark's comparison, shared by the text and JSON renders.
// NowNs is the best (lowest) of the run's samples; Min/Max/Spread expose
// the sample range so a suspicious delta can be told apart from plain
// measurement noise (-count N yields N samples per benchmark).
type row struct {
	Name    string  `json:"name"`
	BaseNs  float64 `json:"base_ns_per_op,omitempty"`
	NowNs   float64 `json:"now_ns_per_op"`
	MinNs   float64 `json:"min_ns_per_op,omitempty"`
	MaxNs   float64 `json:"max_ns_per_op,omitempty"`
	Spread  float64 `json:"spread,omitempty"` // fractional: (max-min)/min over this run's samples
	Samples int     `json:"samples,omitempty"`
	Delta   float64 `json:"delta,omitempty"` // fractional: 0.05 = 5% slower
	Hot     bool    `json:"hot"`
	Verdict string  `json:"verdict"`
}

// report is the full comparison, JSON-ready.
type report struct {
	Baseline     string   `json:"baseline"`
	BaselineDate string   `json:"baseline_date"`
	Rows         []row    `json:"benchmarks"`
	Missing      []row    `json:"missing,omitempty"` // in baseline, not measured
	GeomeanDelta float64  `json:"geomean_delta"`     // fractional, over rows with a baseline
	Compared     int      `json:"compared"`          // rows entering the geomean
	MaxSpread    float64  `json:"max_spread"`        // worst per-benchmark sample spread this run
	MaxSpreadOf  string   `json:"max_spread_of,omitempty"`
	Regressions  []string `json:"regressions,omitempty"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkAccessHugePage-8   92881926   12.66 ns/op   0 B/op".
// The -N GOMAXPROCS suffix is stripped so names match the baseline keys.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	var (
		basePath  = flag.String("baseline", "", "baseline BENCH_*.json to compare against (default: the newest BENCH_*.json in the working directory)")
		threshold = flag.Float64("threshold", 0.10, "max tolerated hot-path ns/op regression (fraction)")
		hotPat    = flag.String("hot", `^Benchmark(Access|Fig1aBimodal|Replay|TraceDecode)`, "regexp of hot-path benchmarks gated by -threshold")
		outPath   = flag.String("out", "", "also write the report to this file (for CI artifacts)")
		asJSON    = flag.Bool("json", false, "emit the report as JSON on stdout instead of the table")
	)
	flag.Parse()
	if *basePath == "" {
		// No baseline named: fall back to the newest committed baseline.
		// Perf PRs should pass -baseline explicitly (the Makefile pins the
		// intended anchor) — the newest file is often the PR's own "after"
		// numbers, which only measures noise.
		p, err := newestBaseline(".")
		if errors.Is(err, errNoBaselines) {
			// A missing baseline is not a failure — a fresh clone or a new
			// machine simply has nothing to compare against yet. Say so
			// plainly and succeed, so `make bench-diff` and CI don't paint
			// a setup state as a perf regression.
			fmt.Printf("benchdiff: %v — nothing to compare against; skipping (record one with scripts or pass -baseline)\n", err)
			os.Exit(0)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -baseline not set and %v\n", err)
			os.Exit(2)
		}
		*basePath = p
	}
	hot, err := regexp.Compile(*hotPat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: -hot: %v\n", err)
		os.Exit(2)
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *basePath, err)
		os.Exit(2)
	}

	current, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading bench output: %v\n", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results on stdin")
		os.Exit(2)
	}

	rep := diff(base, current, hot, *threshold)
	text := render(rep)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Print(text)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}
	if len(rep.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d hot-path regression(s) beyond %.0f%%: %s\n",
			len(rep.Regressions), *threshold*100, strings.Join(rep.Regressions, ", "))
		os.Exit(1)
	}
}

// errNoBaselines marks the benign can't-compare state: the directory
// holds no BENCH_*.json at all. main exits 0 on it with a clear message,
// unlike real errors (unreadable file, bad JSON), which stay exit 2.
var errNoBaselines = errors.New("no BENCH_*.json baseline")

// newestBaseline finds the lexicographically last BENCH_*.json in dir —
// the convention names them BENCH_PR<n>.json, so "newest" and "last"
// coincide for single-digit sequences and the Makefile overrides with an
// explicit anchor anyway.
func newestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("%w found in %s", errNoBaselines, dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

// parseBench collects every ns/op sample per benchmark name (a -count N
// run yields N lines per benchmark). The comparison uses the best sample;
// the full set feeds the per-benchmark min/max spread.
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = append(out[m[1]], ns)
	}
	return out, sc.Err()
}

// sampleRange summarizes one benchmark's samples: best (min), worst
// (max), and the fractional spread between them.
func sampleRange(samples []float64) (min, max, spread float64) {
	min, max = samples[0], samples[0]
	for _, s := range samples[1:] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min > 0 {
		spread = (max - min) / min
	}
	return min, max, spread
}

// diff builds the comparison: per-benchmark rows, the geomean of the
// now/base ratios over every benchmark with a baseline, and the hot
// benchmarks whose slowdown exceeded the threshold.
func diff(base baseline, current map[string][]float64, hot *regexp.Regexp, threshold float64) report {
	rep := report{Baseline: base.PR, BaselineDate: base.Date}

	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	var logSum float64
	for _, name := range names {
		min, max, spread := sampleRange(current[name])
		ns := min // compare by the least-noisy sample
		r := row{
			Name: name, NowNs: ns, Hot: hot.MatchString(name),
			MinNs: min, MaxNs: max, Spread: spread, Samples: len(current[name]),
		}
		if spread > rep.MaxSpread {
			rep.MaxSpread, rep.MaxSpreadOf = spread, name
		}
		b, ok := base.Benchmarks[name]
		if !ok || b.After == nil || b.After.NsPerOp <= 0 {
			r.Verdict = "no baseline"
			rep.Rows = append(rep.Rows, r)
			continue
		}
		r.BaseNs = b.After.NsPerOp
		r.Delta = (ns - b.After.NsPerOp) / b.After.NsPerOp
		logSum += math.Log(ns / b.After.NsPerOp)
		rep.Compared++
		r.Verdict = "ok"
		switch {
		case r.Hot && r.Delta > threshold:
			r.Verdict = "REGRESSION"
			rep.Regressions = append(rep.Regressions, name)
		case r.Delta > threshold:
			r.Verdict = "slower (not gated)"
		case r.Delta < -threshold:
			r.Verdict = "faster"
		}
		rep.Rows = append(rep.Rows, r)
	}
	if rep.Compared > 0 {
		rep.GeomeanDelta = math.Exp(logSum/float64(rep.Compared)) - 1
	}
	for name, b := range base.Benchmarks {
		if _, ok := current[name]; !ok && b.After != nil {
			rep.Missing = append(rep.Missing, row{Name: name, BaseNs: b.After.NsPerOp, Verdict: "not measured"})
		}
	}
	sort.Slice(rep.Missing, func(i, j int) bool { return rep.Missing[i].Name < rep.Missing[j].Name })
	return rep
}

// render formats the report as the human-readable table.
func render(rep report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "baseline: %s (%s)\n", rep.Baseline, rep.BaselineDate)
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s %16s  %s\n", "benchmark", "base ns/op", "now ns/op", "delta", "min..max", "verdict")
	for _, r := range rep.Rows {
		if r.Verdict == "no baseline" {
			fmt.Fprintf(&sb, "%-44s %14s %14.1f %8s %16s  no baseline\n", r.Name, "-", r.NowNs, "-", spreadCell(r))
			continue
		}
		fmt.Fprintf(&sb, "%-44s %14.1f %14.1f %+7.1f%% %16s  %s\n",
			r.Name, r.BaseNs, r.NowNs, r.Delta*100, spreadCell(r), r.Verdict)
	}
	for _, r := range rep.Missing {
		fmt.Fprintf(&sb, "%-44s %14.1f %14s %8s %16s  not measured\n", r.Name, r.BaseNs, "-", "-", "-")
	}
	if rep.Compared > 0 {
		fmt.Fprintf(&sb, "geomean delta: %+.1f%% over %d benchmarks with a baseline\n",
			rep.GeomeanDelta*100, rep.Compared)
	}
	if rep.MaxSpreadOf != "" {
		fmt.Fprintf(&sb, "worst sample spread: ±%.0f%% (%s) — deltas inside the spread are noise\n",
			rep.MaxSpread*100, rep.MaxSpreadOf)
	}
	return sb.String()
}

// spreadCell formats a row's sample range for the table: the min..max
// ns/op span with the fractional spread, or just the single sample count
// hint when -count was 1 (min == max, spread undefined as a signal).
func spreadCell(r row) string {
	if r.Samples <= 1 {
		return "-"
	}
	return fmt.Sprintf("%.0f..%.0f ±%.0f%%", r.MinNs, r.MaxNs, r.Spread*100)
}
