// Command benchdiff compares `go test -bench` output against a committed
// BENCH_*.json baseline — a benchstat-style report without the external
// dependency. It reads benchmark output on stdin, matches benchmark names
// against the baseline's "benchmarks" map (the after.ns_per_op numbers),
// and prints a delta table. Benchmarks matching the -hot pattern fail the
// run (exit 1) when they regress by more than -threshold; everything else
// is report-only.
//
// Usage:
//
//	go test -run='^$' -bench=. . | go run ./cmd/benchdiff -baseline BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type metrics struct {
	NsPerOp float64 `json:"ns_per_op"`
}

type entry struct {
	After *metrics `json:"after"`
}

type baseline struct {
	PR         string           `json:"pr"`
	Date       string           `json:"date"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkAccessHugePage-8   92881926   12.66 ns/op   0 B/op".
// The -N GOMAXPROCS suffix is stripped so names match the baseline keys.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	var (
		basePath  = flag.String("baseline", "", "baseline BENCH_*.json to compare against (required)")
		threshold = flag.Float64("threshold", 0.10, "max tolerated hot-path ns/op regression (fraction)")
		hotPat    = flag.String("hot", `^Benchmark(Access|Fig1aBimodal|Replay|TraceDecode)`, "regexp of hot-path benchmarks gated by -threshold")
		outPath   = flag.String("out", "", "also write the report to this file (for CI artifacts)")
	)
	flag.Parse()
	if *basePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline is required")
		os.Exit(2)
	}
	hot, err := regexp.Compile(*hotPat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: -hot: %v\n", err)
		os.Exit(2)
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *basePath, err)
		os.Exit(2)
	}

	current, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading bench output: %v\n", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results on stdin")
		os.Exit(2)
	}

	report, regressions := diff(base, current, hot, *threshold)
	fmt.Print(report)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d hot-path regression(s) beyond %.0f%%: %s\n",
			len(regressions), *threshold*100, strings.Join(regressions, ", "))
		os.Exit(1)
	}
}

// parseBench collects the best (lowest) ns/op per benchmark name, so a
// -count run is compared by its least-noisy iteration.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

// diff renders the comparison table and returns the hot benchmarks whose
// slowdown exceeded the threshold.
func diff(base baseline, current map[string]float64, hot *regexp.Regexp, threshold float64) (string, []string) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "baseline: %s (%s)\n", base.PR, base.Date)
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s  %s\n", "benchmark", "base ns/op", "now ns/op", "delta", "verdict")

	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		ns := current[name]
		b, ok := base.Benchmarks[name]
		if !ok || b.After == nil || b.After.NsPerOp <= 0 {
			fmt.Fprintf(&sb, "%-44s %14s %14.1f %8s  no baseline\n", name, "-", ns, "-")
			continue
		}
		delta := (ns - b.After.NsPerOp) / b.After.NsPerOp
		verdict := "ok"
		switch {
		case hot.MatchString(name) && delta > threshold:
			verdict = "REGRESSION"
			regressions = append(regressions, name)
		case delta > threshold:
			verdict = "slower (not gated)"
		case delta < -threshold:
			verdict = "faster"
		}
		fmt.Fprintf(&sb, "%-44s %14.1f %14.1f %+7.1f%%  %s\n",
			name, b.After.NsPerOp, ns, delta*100, verdict)
	}
	var missing []string
	for name, b := range base.Benchmarks {
		if _, ok := current[name]; !ok && b.After != nil {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(&sb, "%-44s %14.1f %14s %8s  not measured\n",
			name, base.Benchmarks[name].After.NsPerOp, "-", "-")
	}
	return sb.String(), regressions
}
