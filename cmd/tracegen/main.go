// Command tracegen records workload page-access traces to the binary
// trace format, for later replay with `atsim -replay` or external tools.
//
// Synthetic workloads stream straight through trace.Writer in fixed-size
// chunks, so recording length is bounded by disk, not RAM — a billion
// accesses needs the same constant memory as a thousand. The graph500
// workload materializes its BFS trace first (the BFS itself needs the
// graph in memory) and then writes it the same way.
//
// Examples:
//
//	tracegen -workload bimodal -n 1000000 -o bimodal.trc
//	tracegen -workload bimodal -n 1000000000 -o big.trc   # constant memory
//	tracegen -workload graph500 -gscale 18 -roots 4 -o bfs.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"addrxlat/internal/graph500"
	"addrxlat/internal/trace"
	"addrxlat/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "bimodal", "workload: bimodal|graphwalk|uniform|zipf|sequential|graph500")
		out     = flag.String("o", "trace.trc", "output file")
		n       = flag.Int("n", 1_000_000, "accesses to record")
		vPages  = flag.Uint64("vpages", 1<<20, "virtual address space, pages")
		hotPg   = flag.Uint64("hot", 1<<14, "bimodal hot-region pages")
		hotProb = flag.Float64("hot-prob", 0.9999, "bimodal hot probability")
		zipfS   = flag.Float64("zipf-s", 1.1, "zipf exponent")
		alpha   = flag.Float64("alpha", 0.01, "graphwalk Pareto alpha")
		gscale  = flag.Int("gscale", 16, "graph500 scale")
		roots   = flag.Int("roots", 1, "graph500 BFS root count")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *n <= 0 {
		fail(fmt.Errorf("-n must be positive"))
	}

	var stats trace.Stats
	var written int
	switch *wl {
	case "graph500":
		g, err := graph500.Generate(graph500.Config{Scale: *gscale, EdgeFactor: 16, Seed: *seed})
		if err != nil {
			fail(err)
		}
		rs := g.SampleRoots(*roots, *seed+1)
		if len(rs) == 0 {
			fail(fmt.Errorf("graph has no usable BFS roots"))
		}
		res, err := g.MultiBFSTrace(rs, graph500.DefaultLayout(), *n)
		if err != nil {
			fail(err)
		}
		stats = trace.Summarize(res.Trace)
		written = len(res.Trace)
		if err := writeAll(*out, uint64(written), func(w *trace.Writer) error {
			return w.Write(res.Trace)
		}); err != nil {
			fail(err)
		}
	default:
		var gen workload.Generator
		var err error
		switch *wl {
		case "bimodal":
			gen, err = workload.NewBimodal(*hotPg, *vPages, *hotProb, *seed)
		case "graphwalk":
			gen, err = workload.NewGraphWalk(*vPages, *alpha, *seed)
		case "uniform":
			gen, err = workload.NewUniform(*vPages, *seed)
		case "zipf":
			gen, err = workload.NewZipf(*vPages, *zipfS, *seed)
		case "sequential":
			gen, err = workload.NewSequential(*vPages)
		default:
			err = fmt.Errorf("unknown workload %q", *wl)
		}
		if err != nil {
			fail(err)
		}
		var acc trace.Accumulator
		written = *n
		if err := writeAll(*out, uint64(*n), func(w *trace.Writer) error {
			src, err := workload.NewSource(gen, workload.DefaultChunk, *n)
			if err != nil {
				return err
			}
			defer src.Stop()
			for {
				chunk, ok := src.Next()
				if !ok {
					return nil
				}
				if err := w.Write(chunk); err != nil {
					return err
				}
				acc.Add(chunk)
				src.Recycle(chunk)
			}
		}); err != nil {
			fail(err)
		}
		stats = acc.Stats()
	}

	fmt.Printf("wrote %d accesses to %s\n", written, *out)
	fmt.Printf("stats: %s\n", stats)
}

// writeAll creates the output file, wraps it in a trace.Writer declaring
// count accesses, runs fill, and closes both, reporting the first error.
func writeAll(path string, count uint64, fill func(*trace.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f, count)
	if err != nil {
		f.Close()
		return err
	}
	if err := fill(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
