// Command tracegen records workload page-access traces to the binary
// trace format, for later replay with `atsim -replay` or external tools.
//
// Examples:
//
//	tracegen -workload bimodal -n 1000000 -o bimodal.trc
//	tracegen -workload graph500 -gscale 18 -roots 4 -o bfs.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"addrxlat/internal/graph500"
	"addrxlat/internal/trace"
	"addrxlat/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "bimodal", "workload: bimodal|graphwalk|uniform|zipf|sequential|graph500")
		out     = flag.String("o", "trace.trc", "output file")
		n       = flag.Int("n", 1_000_000, "accesses to record")
		vPages  = flag.Uint64("vpages", 1<<20, "virtual address space, pages")
		hotPg   = flag.Uint64("hot", 1<<14, "bimodal hot-region pages")
		hotProb = flag.Float64("hot-prob", 0.9999, "bimodal hot probability")
		zipfS   = flag.Float64("zipf-s", 1.1, "zipf exponent")
		alpha   = flag.Float64("alpha", 0.01, "graphwalk Pareto alpha")
		gscale  = flag.Int("gscale", 16, "graph500 scale")
		roots   = flag.Int("roots", 1, "graph500 BFS root count")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var pages []uint64
	switch *wl {
	case "graph500":
		g, err := graph500.Generate(graph500.Config{Scale: *gscale, EdgeFactor: 16, Seed: *seed})
		if err != nil {
			fail(err)
		}
		rs := g.SampleRoots(*roots, *seed+1)
		if len(rs) == 0 {
			fail(fmt.Errorf("graph has no usable BFS roots"))
		}
		res, err := g.MultiBFSTrace(rs, graph500.DefaultLayout(), *n)
		if err != nil {
			fail(err)
		}
		pages = res.Trace
	default:
		var gen workload.Generator
		var err error
		switch *wl {
		case "bimodal":
			gen, err = workload.NewBimodal(*hotPg, *vPages, *hotProb, *seed)
		case "graphwalk":
			gen, err = workload.NewGraphWalk(*vPages, *alpha, *seed)
		case "uniform":
			gen, err = workload.NewUniform(*vPages, *seed)
		case "zipf":
			gen, err = workload.NewZipf(*vPages, *zipfS, *seed)
		case "sequential":
			gen, err = workload.NewSequential(*vPages)
		default:
			err = fmt.Errorf("unknown workload %q", *wl)
		}
		if err != nil {
			fail(err)
		}
		pages = workload.Take(gen, *n)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := trace.Write(f, pages); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d accesses to %s\n", len(pages), *out)
	fmt.Printf("stats: %s\n", trace.Summarize(pages))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
