// Command atsim runs one address-translation simulation: a workload
// against a memory-management algorithm, printing the cost counters of the
// address-translation cost model.
//
// Examples:
//
//	atsim -workload bimodal -algo hugepage -h 64
//	atsim -workload graphwalk -algo decoupled -alloc iceberg
//	atsim -workload graph500 -algo hybrid -g 4
//	atsim -workload zipf -zipf-s 1.2 -algo decoupled
package main

import (
	"flag"
	"fmt"
	"os"

	"addrxlat/internal/core"
	"addrxlat/internal/graph500"
	"addrxlat/internal/mm"
	"addrxlat/internal/policy"
	"addrxlat/internal/prof"
	"addrxlat/internal/trace"
	"addrxlat/internal/workload"
)

// profile is flushed on every exit path, including fail().
var profile *prof.Flags

func main() {
	var (
		wl      = flag.String("workload", "bimodal", "workload: bimodal|graphwalk|graph500|uniform|zipf|sequential")
		algo    = flag.String("algo", "hugepage", "algorithm: hugepage|decoupled|hybrid|thp|superpage|hawkeye|directseg|coalesced|nested|tlb-only|ram-only")
		alloc   = flag.String("alloc", "iceberg", "decoupled allocation scheme: full|single|iceberg")
		h       = flag.Uint64("h", 1, "huge-page size for -algo hugepage")
		g       = flag.Uint64("g", 2, "group size for -algo hybrid")
		vPages  = flag.Uint64("vpages", 1<<20, "virtual address space, base pages")
		ramPg   = flag.Uint64("ram", 1<<18, "physical memory, base pages")
		tlbEnt  = flag.Int("tlb", 1536, "TLB entries")
		wBits   = flag.Int("w", 64, "TLB value bits")
		tlbPol  = flag.String("tlb-policy", "lru", "TLB replacement policy")
		ramPol  = flag.String("ram-policy", "lru", "RAM replacement policy")
		warmN   = flag.Int("warmup", 1_000_000, "warmup accesses")
		measN   = flag.Int("measure", 1_000_000, "measured accesses")
		hotFrac = flag.Float64("hot-prob", 0.9999, "bimodal hot-access probability")
		hotPg   = flag.Uint64("hot", 1<<14, "bimodal hot-region pages")
		zipfS   = flag.Float64("zipf-s", 1.1, "zipf exponent")
		alpha   = flag.Float64("alpha", 0.01, "graphwalk Pareto alpha")
		gscale  = flag.Int("gscale", 16, "graph500 scale (log2 vertices)")
		seed    = flag.Uint64("seed", 1, "random seed")
		eps     = flag.Float64("eps", 0.01, "TLB-miss cost ε")
		dumpTo  = flag.String("dump-trace", "", "also write the measured trace to this file")
		replay  = flag.String("replay", "", "replay a recorded trace file instead of generating a workload")
	)
	profile = prof.Register(nil)
	flag.Parse()
	if err := profile.Start(); err != nil {
		fail(err)
	}
	defer func() {
		if !flushProfile() {
			os.Exit(1)
		}
	}()

	var (
		warm, meas []uint64
		vSpace     uint64
		err        error
	)
	if *replay != "" {
		*wl = "replay:" + *replay
		warm, meas, vSpace, err = loadTrace(*replay, *warmN, *measN)
	} else {
		warm, meas, vSpace, err = buildWorkload(*wl, *vPages, *warmN, *measN, *hotPg, *hotFrac, *zipfS, *alpha, *gscale, *seed)
	}
	if err != nil {
		fail(err)
	}
	if vSpace > 0 {
		*vPages = vSpace
	}

	alg, err := buildAlgorithm(*algo, core.AllocKind(allocName(*alloc)), *h, *g, *vPages, *ramPg,
		*tlbEnt, *wBits, policy.Kind(*tlbPol), policy.Kind(*ramPol), *seed)
	if err != nil {
		fail(err)
	}

	costs := mm.RunWarm(alg, warm, meas)
	fmt.Printf("algorithm: %s\n", alg.Name())
	fmt.Printf("workload:  %s (%d warmup + %d measured accesses)\n", *wl, len(warm), len(meas))
	fmt.Printf("machine:   V=%d pages, P=%d pages, TLB=%d entries, w=%d bits\n",
		*vPages, *ramPg, *tlbEnt, *wBits)
	fmt.Printf("costs:     %s\n", costs)
	fmt.Printf("total:     C = %.2f  (ε=%.3g)\n", costs.Total(*eps), *eps)
	if z, ok := alg.(*mm.Decoupled); ok {
		fmt.Printf("decoupled: %s\n", z.Params())
		fmt.Printf("failures:  %d lifetime paging failures, %d failure-path accesses\n",
			z.Scheme().TotalFailures(), z.FailureHits())
	}

	if *dumpTo != "" {
		f, err := os.Create(*dumpTo)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := trace.Write(f, meas); err != nil {
			fail(err)
		}
		fmt.Printf("trace:     wrote %d accesses to %s (%s)\n",
			len(meas), *dumpTo, trace.Summarize(meas))
	}
}

// loadTrace reads a recorded trace and splits it into warmup/measured
// halves (bounded by the requested counts when the trace is long enough).
func loadTrace(path string, warmN, measN int) (warm, meas []uint64, vSpace uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	defer f.Close()
	pages, err := trace.Read(f)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(pages) == 0 {
		return nil, nil, 0, fmt.Errorf("trace %s is empty", path)
	}
	if len(pages) < warmN+measN {
		warmN = len(pages) / 2
		measN = len(pages) - warmN
	}
	s := trace.Summarize(pages)
	return pages[:warmN], pages[warmN : warmN+measN], s.MaxPage + 1, nil
}

func allocName(s string) string {
	switch s {
	case "full", "single", "iceberg":
		return s
	default:
		fail(fmt.Errorf("unknown alloc kind %q", s))
		return ""
	}
}

func buildWorkload(kind string, vPages uint64, warmN, measN int, hotPg uint64, hotProb, zipfS, alpha float64, gscale int, seed uint64) (warm, meas []uint64, vSpace uint64, err error) {
	var gen workload.Generator
	switch kind {
	case "bimodal":
		gen, err = workload.NewBimodal(hotPg, vPages, hotProb, seed)
	case "graphwalk":
		gen, err = workload.NewGraphWalk(vPages, alpha, seed)
	case "uniform":
		gen, err = workload.NewUniform(vPages, seed)
	case "zipf":
		gen, err = workload.NewZipf(vPages, zipfS, seed)
	case "sequential":
		gen, err = workload.NewSequential(vPages)
	case "graph500":
		g, gerr := graph500.Generate(graph500.Config{Scale: gscale, EdgeFactor: 16, Seed: seed})
		if gerr != nil {
			return nil, nil, 0, gerr
		}
		res, gerr := g.BFSTrace(g.HighestDegreeVertex(), graph500.DefaultLayout(), warmN+measN)
		if gerr != nil {
			return nil, nil, 0, gerr
		}
		tr := res.Trace
		if len(tr) < warmN+measN {
			warmN = len(tr) / 2
			measN = len(tr) - warmN
		}
		return tr[:warmN], tr[warmN : warmN+measN], res.Footprint.TotalPages, nil
	default:
		return nil, nil, 0, fmt.Errorf("unknown workload %q", kind)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	return workload.Take(gen, warmN), workload.Take(gen, measN), 0, nil
}

func buildAlgorithm(kind string, alloc core.AllocKind, h, g, vPages, ramPages uint64,
	tlbEntries, wBits int, tlbPol, ramPol policy.Kind, seed uint64) (mm.Algorithm, error) {
	switch kind {
	case "hugepage":
		return mm.NewHugePage(mm.HugePageConfig{
			HugePageSize: h, TLBEntries: tlbEntries, RAMPages: ramPages,
			TLBPolicy: tlbPol, RAMPolicy: ramPol, Seed: seed,
		})
	case "decoupled":
		return mm.NewDecoupled(mm.DecoupledConfig{
			Alloc: alloc, RAMPages: ramPages, VirtualPages: vPages,
			TLBEntries: tlbEntries, ValueBits: wBits,
			TLBPolicy: tlbPol, RAMPolicy: ramPol, Seed: seed,
		})
	case "hybrid":
		return mm.NewHybrid(mm.HybridConfig{
			Decoupled: mm.DecoupledConfig{
				Alloc: alloc, RAMPages: ramPages, VirtualPages: vPages,
				TLBEntries: tlbEntries, ValueBits: wBits,
				TLBPolicy: tlbPol, RAMPolicy: ramPol, Seed: seed,
			},
			GroupSize: g,
		})
	case "thp":
		return mm.NewTHP(mm.THPConfig{
			HugePageSize: h, TLBEntries: tlbEntries, RAMPages: ramPages, Seed: seed,
		})
	case "superpage":
		return mm.NewSuperpage(mm.SuperpageConfig{
			HugePageSize: h, TLBEntries: tlbEntries, RAMPages: ramPages, Seed: seed,
		})
	case "hawkeye":
		return mm.NewHawkEye(mm.HawkEyeConfig{
			HugePageSize: h, TLBEntries: tlbEntries, RAMPages: ramPages, Seed: seed,
		})
	case "directseg":
		return mm.NewDirectSegment(mm.DirectSegmentConfig{
			SegmentStart: 0, SegmentPages: ramPages / 2,
			TLBEntries: tlbEntries, RAMPages: ramPages, Seed: seed,
		})
	case "coalesced":
		return mm.NewCoalesced(mm.CoalescedConfig{
			CoalesceLimit: 8, TLBEntries: tlbEntries,
			RAMPages: ramPages, VirtualPages: vPages, Seed: seed,
		})
	case "nested":
		return mm.NewNested(mm.NestedConfig{
			GuestHugePageSize: h, HostHugePageSize: 1,
			GuestTLBEntries: tlbEntries, HostTLBEntries: tlbEntries,
			RAMPages: ramPages, Seed: seed,
		})
	case "tlb-only":
		return mm.NewTLBOnly(h, tlbEntries, tlbPol, seed)
	case "ram-only":
		return mm.NewRAMOnly(ramPages, ramPol, seed)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", kind)
	}
}

// flushProfile stops the CPU profile and writes the heap profile, if
// either was requested. It reports whether flushing succeeded.
func flushProfile() bool {
	if profile == nil {
		return true
	}
	if err := profile.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "atsim: %v\n", err)
		return false
	}
	return true
}

func fail(err error) {
	flushProfile()
	fmt.Fprintf(os.Stderr, "atsim: %v\n", err)
	os.Exit(1)
}
