// Command atsim runs one address-translation simulation: a workload
// against a memory-management algorithm, printing the cost counters of the
// address-translation cost model.
//
// Examples:
//
//	atsim -workload bimodal -algo hugepage -h 64
//	atsim -workload graphwalk -algo decoupled -alloc iceberg
//	atsim -workload graph500 -algo hybrid -g 4
//	atsim -workload zipf -zipf-s 1.2 -algo decoupled
//	atsim -workload bimodal -algo thp -h 64 -explain
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"addrxlat/internal/core"
	"addrxlat/internal/faultinject"
	"addrxlat/internal/graph500"
	"addrxlat/internal/metrics"
	"addrxlat/internal/mm"
	"addrxlat/internal/obs"
	"addrxlat/internal/policy"
	"addrxlat/internal/prof"
	"addrxlat/internal/serve"
	"addrxlat/internal/trace"
	"addrxlat/internal/workload"
	"addrxlat/internal/xtrace"
)

// profile is flushed on every exit path, including fail().
var profile *prof.Flags

// exitMan/exitManDir let fail() and cancellation flush the run manifest
// with an honest status before exiting.
var (
	exitMan    *obs.Manifest
	exitManDir string
)

// exitTrace is the armed execution tracer (-trace), flushed on every exit
// path — a canceled simulation still exports a well-formed trace, since
// the runners drain at a chunk boundary before fail() runs.
var (
	exitTrace     *xtrace.Tracer
	exitTracePath string
)

// flushTrace writes the Chrome trace-event JSON. Idempotent, best effort.
func flushTrace() {
	t := exitTrace
	if t == nil {
		return
	}
	exitTrace = nil
	if err := t.WriteFile(exitTracePath); err != nil {
		fmt.Fprintf(os.Stderr, "atsim: trace: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "atsim: wrote execution trace %s; load it at https://ui.perfetto.dev\n", exitTracePath)
	}
}

func main() {
	var (
		wl       = flag.String("workload", "bimodal", "workload: bimodal|graphwalk|graph500|uniform|zipf|sequential")
		algo     = flag.String("algo", "hugepage", "algorithm: hugepage|decoupled|hybrid|thp|superpage|hawkeye|directseg|coalesced|nested|tlb-only|ram-only")
		alloc    = flag.String("alloc", "iceberg", "decoupled allocation scheme: full|single|iceberg")
		h        = flag.Uint64("h", 1, "huge-page size for -algo hugepage")
		g        = flag.Uint64("g", 2, "group size for -algo hybrid")
		vPages   = flag.Uint64("vpages", 1<<20, "virtual address space, base pages")
		ramPg    = flag.Uint64("ram", 1<<18, "physical memory, base pages")
		tlbEnt   = flag.Int("tlb", 1536, "TLB entries")
		wBits    = flag.Int("w", 64, "TLB value bits")
		tlbPol   = flag.String("tlb-policy", "lru", "TLB replacement policy")
		ramPol   = flag.String("ram-policy", "lru", "RAM replacement policy")
		warmN    = flag.Int("warmup", 1_000_000, "warmup accesses")
		measN    = flag.Int("measure", 1_000_000, "measured accesses")
		hotFrac  = flag.Float64("hot-prob", 0.9999, "bimodal hot-access probability")
		hotPg    = flag.Uint64("hot", 1<<14, "bimodal hot-region pages")
		zipfS    = flag.Float64("zipf-s", 1.1, "zipf exponent")
		alpha    = flag.Float64("alpha", 0.01, "graphwalk Pareto alpha")
		gscale   = flag.Int("gscale", 16, "graph500 scale (log2 vertices)")
		seed     = flag.Uint64("seed", 1, "random seed")
		eps      = flag.Float64("eps", 0.01, "TLB-miss cost ε")
		dumpTo   = flag.String("dump-trace", "", "also write the measured trace to this file")
		replay   = flag.String("replay", "", "replay a recorded trace file instead of generating a workload")
		sample   = flag.Uint64("sample", 0, "record a cost-over-time curve every N accesses (0 disables)")
		explainF = flag.Bool("explain", false, "attribute costs: print the event breakdown and write atsim.explain.tsv/.json next to the manifest")
		curves   = flag.String("curves", "", "cost-curve output file (default <manifest dir>/atsim.curves.tsv)")
		maniDir  = flag.String("manifest", "results", "write a run-manifest JSON into this directory (empty disables)")
		traceF   = flag.String("trace", "", "export a Perfetto-loadable execution trace (Chrome trace-event JSON) of the run to this file; counters stay byte-identical")

		serveF        = flag.Bool("serve", false, "run the discrete-event serving front-end over the workload and algorithm instead of a raw access run (see DESIGN.md §13)")
		serveLoad     = flag.Float64("serve-load", 1.0, "offered load, as a multiple of the calibrated capacity (mean service rate)")
		serveReq      = flag.Int("serve-requests", 5000, "requests offered to the serving run")
		serveWarm     = flag.Int("serve-warmup", 1000, "closed-loop calibration requests before the measured run")
		serveBlock    = flag.Int("serve-block", 256, "pages each request accesses")
		serveDeadline = flag.Int64("serve-deadline", 80, "request deadline, in multiples of the calibrated mean service time (0 disables deadlines)")
		serveArrivals = flag.String("serve-arrivals", "poisson", "arrival process: poisson|burst|diurnal")
		serveQueue    = flag.Int("serve-queue", 256, "admission queue capacity")
		serveAttempts = flag.Int("serve-attempts", 3, "total service attempts for requests hitting decoupling failure IOs")
		serveMetrics  = flag.Bool("serve-metrics", false, "arm the virtual-time window collector on the serving run: print the per-window summary and slowest-request exemplars, record windows/SLO/exemplars in the manifest, and (with -manifest) write atsim-serve.serve.metrics.tsv next to it")
	)
	profile = prof.Register(nil)
	flag.Parse()
	if err := faultinject.ArmFromEnv(); err != nil {
		fail(err)
	}
	if err := profile.Start(); err != nil {
		fail(err)
	}
	defer func() {
		if !flushProfile() {
			os.Exit(1)
		}
	}()

	// SIGINT/SIGTERM drain the simulation at the next chunk boundary; the
	// run exits 130 through fail() with a "canceled" manifest.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	man := obs.NewManifest("atsim", os.Args[1:])
	man.Config = obs.FlagConfig(nil)
	man.Seeds = []uint64{*seed}
	man.FaultPlan = faultinject.Plan()
	exitMan, exitManDir = man, *maniDir

	var tracer *xtrace.Tracer
	if *traceF != "" {
		tracer = xtrace.New()
		tracer.SetScope("atsim")
		xtrace.Install(tracer)
		exitTrace, exitTracePath = tracer, *traceF
		man.Trace = *traceF
	}

	if *serveF {
		if *replay != "" {
			fail(fmt.Errorf("-serve drives a live generator; it cannot replay a trace"))
		}
		gen, err := buildGenerator(*wl, *vPages, *hotPg, *hotFrac, *zipfS, *alpha, *seed)
		if err != nil {
			fail(err)
		}
		alg, err := buildAlgorithm(*algo, core.AllocKind(allocName(*alloc)), *h, *g, *vPages, *ramPg,
			*tlbEnt, *wBits, policy.Kind(*tlbPol), policy.Kind(*ramPol), *seed)
		if err != nil {
			fail(err)
		}
		rr, err := runServeMode(alg, gen, serveModeConfig{
			workload: *wl, seed: *seed,
			load: *serveLoad, requests: *serveReq, warmup: *serveWarm,
			blockPages: *serveBlock, deadlineMul: *serveDeadline,
			arrivals: *serveArrivals, queueCap: *serveQueue, attempts: *serveAttempts,
			metrics: *serveMetrics,
		})
		if err != nil {
			fail(err)
		}
		if rr.Serve != nil && rr.Serve.HasMetrics() && *maniDir != "" {
			path := filepath.Join(*maniDir, "atsim-serve.serve.metrics.tsv")
			if err := writeServeMetricsTSV(path, rr.Serve); err != nil {
				fmt.Fprintf(os.Stderr, "atsim: serve metrics: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "atsim: wrote serve metrics windows to %s\n", path)
			}
		}
		man.Experiments = []obs.RunRecord{rr}
		flushTrace()
		flushManifest("ok", "")
		return
	}

	var (
		warm, meas []uint64
		vSpace     uint64
		err        error
	)
	if *replay != "" {
		// Streaming replay: a stats pre-pass sizes the address space and
		// clamps the windows, then the simulation decodes the recording
		// chunk by chunk — replay memory is O(chunk), not O(trace).
		*wl = "replay:" + *replay
		st, err := replayStats(*replay)
		if err != nil {
			fail(err)
		}
		vSpace = st.MaxPage + 1
		if uint64(*warmN)+uint64(*measN) > st.Accesses {
			*warmN = int(st.Accesses / 2)
			*measN = int(st.Accesses) - *warmN
		}
	} else {
		warm, meas, vSpace, err = buildWorkload(*wl, *vPages, *warmN, *measN, *hotPg, *hotFrac, *zipfS, *alpha, *gscale, *seed)
		if err != nil {
			fail(err)
		}
	}
	if vSpace > 0 {
		*vPages = vSpace
	}

	alg, err := buildAlgorithm(*algo, core.AllocKind(allocName(*alloc)), *h, *g, *vPages, *ramPg,
		*tlbEnt, *wBits, policy.Kind(*tlbPol), policy.Kind(*ramPol), *seed)
	if err != nil {
		fail(err)
	}
	var exCounters *obs.Counters
	if *explainF {
		exCounters = mm.EnableExplain(alg)
		if exCounters == nil {
			fmt.Fprintf(os.Stderr, "atsim: -explain: algorithm %q records no attribution\n", *algo)
		}
	}

	rec := obs.NewRecorder(*sample)

	var costs mm.Costs
	var dumpStats string
	runStart := time.Now()
	if *replay != "" {
		costs, dumpStats, err = runReplay(ctx, alg, *replay, *warmN, *measN, *dumpTo, rec)
	} else {
		costs, err = runGenerated(ctx, alg, warm, meas, rec)
	}
	if err != nil {
		fail(err)
	}
	runElapsed := time.Since(runStart)
	fmt.Printf("algorithm: %s\n", alg.Name())
	fmt.Printf("workload:  %s (%d warmup + %d measured accesses)\n", *wl, *warmN, *measN)
	fmt.Printf("machine:   V=%d pages, P=%d pages, TLB=%d entries, w=%d bits\n",
		*vPages, *ramPg, *tlbEnt, *wBits)
	fmt.Printf("costs:     %s\n", costs)
	fmt.Printf("total:     C = %.2f  (ε=%.3g)\n", costs.Total(*eps), *eps)
	if z, ok := alg.(*mm.Decoupled); ok {
		fmt.Printf("decoupled: %s\n", z.Params())
		fmt.Printf("failures:  %d lifetime paging failures, %d failure-path accesses\n",
			z.Scheme().TotalFailures(), z.FailureHits())
	}
	if exCounters != nil {
		// The measured window's attribution (ResetCosts resets the explain
		// counters with the costs, so only post-warmup events remain).
		c := exCounters.Snapshot()
		fmt.Printf("explain:   ios = %d demand + %d amplified + %d failure (%d evictions)\n",
			c.IODemand, c.IOAmplified, c.IOFailure, c.Evictions)
		fmt.Printf("           tlb = %d compulsory + %d capacity + %d coverage-loss (%d invalidations), %d decode misses\n",
			c.TLBCompulsory, c.TLBCapacity, c.TLBCoverageLoss, c.TLBInvalidations, c.DecodeMisses)
		var g obs.Gauges
		var hasG bool
		if gg, ok := alg.(mm.Gauger); ok {
			if g, hasG = gg.ExplainGauges(); hasG {
				fmt.Printf("gauges:    util=%.4f frag=%.4f coverage=%d pages/entry, tlb reach=%d pages\n",
					g.Utilization, g.Fragmentation, g.CoveragePages, g.TLBReachPages)
				if g.HasLoads {
					fmt.Printf("buckets:   n=%d avg=%.2f max=%d, Theorem 2 bound=%.1f\n",
						g.Buckets, g.AvgLoad, g.MaxLoad, g.Theorem2Bound)
				}
			}
		}
		rec.RowExplain("", mm.PhaseMeasured, alg.Name(), c, g, hasG)
	}

	if *dumpTo != "" {
		if *replay == "" {
			f, err := os.Create(*dumpTo)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			if err := trace.Write(f, meas); err != nil {
				fail(err)
			}
			dumpStats = trace.Summarize(meas).String()
		}
		fmt.Printf("trace:     wrote %d accesses to %s (%s)\n", *measN, *dumpTo, dumpStats)
	}

	if rec.HasSeries() {
		path := *curves
		if path == "" && *maniDir != "" {
			path = filepath.Join(*maniDir, "atsim.curves.tsv")
		}
		if path != "" {
			if err := writeCurves(rec, path); err != nil {
				fail(err)
			}
			fmt.Printf("curves:    wrote cost-over-time series to %s\n", path)
		}
	}
	if rec.HasExplain() && *maniDir != "" {
		base := filepath.Join(*maniDir, "atsim.explain")
		if err := writeExplain(rec, base); err != nil {
			fail(err)
		}
		fmt.Printf("explain:   wrote attribution to %s.tsv and %s.json\n", base, base)
	}
	rr := obs.RunRecord{
		ID: *algo, Table: *wl, Rows: 1,
		WallSeconds: runElapsed.Seconds(), Phases: rec.Phases(),
	}
	if rec.HasExplain() {
		tot := rec.ExplainTotals()
		rr.Explain = &tot
	}
	if tracer != nil {
		// The run's one stream carries no row label inside the runners;
		// label the report with the workload for the manifest and digest.
		for _, rep := range tracer.Analyze() {
			if rep.Row == "" {
				rep.Row = *wl
			}
			rec.RowTimeline(rep)
			fmt.Printf("timeline:  %s\n", rep.Summary())
		}
		rr.Timeline = rec.Timelines()
	}
	man.Experiments = []obs.RunRecord{rr}
	flushTrace()
	flushManifest("ok", "")
}

// runGenerated is the materialized-window run path: mm.RunWarm semantics
// with per-phase samples and wall times fed to rec, draining at a chunk
// boundary when ctx is canceled. Chunking through the sampled runner
// cannot change the counters (Batcher contract).
func runGenerated(ctx context.Context, alg mm.Algorithm, warm, meas []uint64, rec *obs.Recorder) (mm.Costs, error) {
	name := alg.Name()
	start := time.Now()
	if _, err := mm.RunPhaseSampledCtx(ctx, alg, warm, workload.DefaultChunk, rec, mm.PhaseWarmup); err != nil {
		return alg.Costs(), err
	}
	rec.RowPhase("", mm.PhaseWarmup, name, len(warm), time.Since(start))
	alg.ResetCosts()
	start = time.Now()
	c, err := mm.RunPhaseSampledCtx(ctx, alg, meas, workload.DefaultChunk, rec, mm.PhaseMeasured)
	if err != nil {
		return c, err
	}
	rec.RowPhase("", mm.PhaseMeasured, name, len(meas), time.Since(start))
	return c, nil
}

// writeExplain renders the recorded attribution snapshot to <base>.tsv
// and <base>.json.
func writeExplain(rec *obs.Recorder, base string) error {
	if dir := filepath.Dir(base); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tf, err := os.Create(base + ".tsv")
	if err != nil {
		return err
	}
	if err := rec.WriteExplainTSV(tf); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	jf, err := os.Create(base + ".json")
	if err != nil {
		return err
	}
	if err := rec.WriteExplainJSON(jf); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}

// writeCurves renders the recorded cost-over-time series to path.
func writeCurves(rec *obs.Recorder, path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replayStats summarizes a recorded trace in one streaming pass (O(chunk)
// memory apart from the distinct-page set).
func replayStats(path string) (trace.Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Stats{}, err
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		return trace.Stats{}, err
	}
	if tr.Count() == 0 {
		return trace.Stats{}, fmt.Errorf("trace %s is empty", path)
	}
	var acc trace.Accumulator
	buf := make([]uint64, workload.DefaultChunk)
	for {
		n, err := tr.Read(buf)
		acc.Add(buf[:n])
		if err == io.EOF {
			return acc.Stats(), nil
		}
		if err != nil {
			return trace.Stats{}, err
		}
	}
}

// runReplay streams the recording through the algorithm: warmN accesses,
// counter reset, measN accesses — decoding chunk by chunk. When dumpTo is
// set, the measured window is simultaneously re-encoded to that file and
// its stats string returned. rec observes the run at chunk boundaries.
func runReplay(ctx context.Context, alg mm.Algorithm, path string, warmN, measN int, dumpTo string, rec *obs.Recorder) (mm.Costs, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return mm.Costs{}, "", err
	}
	defer f.Close()
	sr, err := workload.NewStreamReplay(f, 0)
	if err != nil {
		return mm.Costs{}, "", err
	}

	buf := make([]uint64, workload.DefaultChunk)
	window := func(n int, each func([]uint64) error) error {
		for n > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			c := len(buf)
			if n < c {
				c = n
			}
			sr.NextBatch(buf[:c])
			if err := each(buf[:c]); err != nil {
				return err
			}
			n -= c
		}
		return nil
	}
	name := alg.Name()
	phase := mm.PhaseWarmup
	// The replay loop bypasses the mm runners, so it carries its own trace
	// timeline: chunk spans here, phase spans around each window below.
	var th *xtrace.Thread
	if tr := xtrace.Active(); tr != nil {
		th = tr.Worker("", name)
	}
	serve := func(chunk []uint64) error {
		var chunkStart int64
		if th != nil {
			chunkStart = th.Now()
		}
		if b, ok := alg.(mm.Batcher); ok {
			b.AccessBatch(chunk)
		} else {
			for _, v := range chunk {
				alg.Access(v)
			}
		}
		rec.Sample(phase, name, alg.Costs())
		if th != nil {
			th.Span(phase, xtrace.CatChunk, chunkStart, xtrace.ArgInt("n", int64(len(chunk))))
		}
		return nil
	}

	start := time.Now()
	phaseStart := th.Now()
	if err := window(warmN, serve); err != nil {
		return mm.Costs{}, "", err
	}
	th.Span(mm.PhaseWarmup, xtrace.CatPhase, phaseStart)
	rec.RowPhase("", mm.PhaseWarmup, name, warmN, time.Since(start))
	alg.ResetCosts()
	phase = mm.PhaseMeasured
	start = time.Now()
	phaseStart = th.Now()
	defer func() { th.Span(mm.PhaseMeasured, xtrace.CatPhase, phaseStart) }()

	var dumpStats string
	if dumpTo == "" {
		if err := window(measN, serve); err != nil {
			return mm.Costs{}, "", err
		}
	} else {
		out, err := os.Create(dumpTo)
		if err != nil {
			return mm.Costs{}, "", err
		}
		defer out.Close()
		tw, err := trace.NewWriter(out, uint64(measN))
		if err != nil {
			return mm.Costs{}, "", err
		}
		var acc trace.Accumulator
		if err := window(measN, func(chunk []uint64) error {
			if err := serve(chunk); err != nil {
				return err
			}
			acc.Add(chunk)
			return tw.Write(chunk)
		}); err != nil {
			return mm.Costs{}, "", err
		}
		if err := tw.Close(); err != nil {
			return mm.Costs{}, "", err
		}
		dumpStats = acc.Stats().String()
	}
	rec.RowPhase("", mm.PhaseMeasured, name, measN, time.Since(start))
	return alg.Costs(), dumpStats, nil
}

func allocName(s string) string {
	switch s {
	case "full", "single", "iceberg":
		return s
	default:
		fail(fmt.Errorf("unknown alloc kind %q", s))
		return ""
	}
}

// buildGenerator constructs the streaming generator workloads — the ones
// the serving front-end can drive directly (graph500 and replay are
// materialized traces, not generators).
func buildGenerator(kind string, vPages, hotPg uint64, hotProb, zipfS, alpha float64, seed uint64) (workload.Generator, error) {
	switch kind {
	case "bimodal":
		return workload.NewBimodal(hotPg, vPages, hotProb, seed)
	case "graphwalk":
		return workload.NewGraphWalk(vPages, alpha, seed)
	case "uniform":
		return workload.NewUniform(vPages, seed)
	case "zipf":
		return workload.NewZipf(vPages, zipfS, seed)
	case "sequential":
		return workload.NewSequential(vPages)
	default:
		return nil, fmt.Errorf("workload %q is not a streaming generator (want bimodal|graphwalk|uniform|zipf|sequential)", kind)
	}
}

func buildWorkload(kind string, vPages uint64, warmN, measN int, hotPg uint64, hotProb, zipfS, alpha float64, gscale int, seed uint64) (warm, meas []uint64, vSpace uint64, err error) {
	var gen workload.Generator
	switch kind {
	case "bimodal", "graphwalk", "uniform", "zipf", "sequential":
		gen, err = buildGenerator(kind, vPages, hotPg, hotProb, zipfS, alpha, seed)
	case "graph500":
		g, gerr := graph500.Generate(graph500.Config{Scale: gscale, EdgeFactor: 16, Seed: seed})
		if gerr != nil {
			return nil, nil, 0, gerr
		}
		res, gerr := g.BFSTrace(g.HighestDegreeVertex(), graph500.DefaultLayout(), warmN+measN)
		if gerr != nil {
			return nil, nil, 0, gerr
		}
		tr := res.Trace
		if len(tr) < warmN+measN {
			warmN = len(tr) / 2
			measN = len(tr) - warmN
		}
		return tr[:warmN], tr[warmN : warmN+measN], res.Footprint.TotalPages, nil
	default:
		return nil, nil, 0, fmt.Errorf("unknown workload %q", kind)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	return workload.Take(gen, warmN), workload.Take(gen, measN), 0, nil
}

func buildAlgorithm(kind string, alloc core.AllocKind, h, g, vPages, ramPages uint64,
	tlbEntries, wBits int, tlbPol, ramPol policy.Kind, seed uint64) (mm.Algorithm, error) {
	switch kind {
	case "hugepage":
		return mm.NewHugePage(mm.HugePageConfig{
			HugePageSize: h, TLBEntries: tlbEntries, RAMPages: ramPages,
			TLBPolicy: tlbPol, RAMPolicy: ramPol, Seed: seed,
		})
	case "decoupled":
		return mm.NewDecoupled(mm.DecoupledConfig{
			Alloc: alloc, RAMPages: ramPages, VirtualPages: vPages,
			TLBEntries: tlbEntries, ValueBits: wBits,
			TLBPolicy: tlbPol, RAMPolicy: ramPol, Seed: seed,
		})
	case "hybrid":
		return mm.NewHybrid(mm.HybridConfig{
			Decoupled: mm.DecoupledConfig{
				Alloc: alloc, RAMPages: ramPages, VirtualPages: vPages,
				TLBEntries: tlbEntries, ValueBits: wBits,
				TLBPolicy: tlbPol, RAMPolicy: ramPol, Seed: seed,
			},
			GroupSize: g,
		})
	case "thp":
		return mm.NewTHP(mm.THPConfig{
			HugePageSize: h, TLBEntries: tlbEntries, RAMPages: ramPages, Seed: seed,
		})
	case "superpage":
		return mm.NewSuperpage(mm.SuperpageConfig{
			HugePageSize: h, TLBEntries: tlbEntries, RAMPages: ramPages, Seed: seed,
		})
	case "hawkeye":
		return mm.NewHawkEye(mm.HawkEyeConfig{
			HugePageSize: h, TLBEntries: tlbEntries, RAMPages: ramPages, Seed: seed,
		})
	case "directseg":
		return mm.NewDirectSegment(mm.DirectSegmentConfig{
			SegmentStart: 0, SegmentPages: ramPages / 2,
			TLBEntries: tlbEntries, RAMPages: ramPages, Seed: seed,
		})
	case "coalesced":
		return mm.NewCoalesced(mm.CoalescedConfig{
			CoalesceLimit: 8, TLBEntries: tlbEntries,
			RAMPages: ramPages, VirtualPages: vPages, Seed: seed,
		})
	case "nested":
		return mm.NewNested(mm.NestedConfig{
			GuestHugePageSize: h, HostHugePageSize: 1,
			GuestTLBEntries: tlbEntries, HostTLBEntries: tlbEntries,
			RAMPages: ramPages, Seed: seed,
		})
	case "tlb-only":
		return mm.NewTLBOnly(h, tlbEntries, tlbPol, seed)
	case "ram-only":
		return mm.NewRAMOnly(ramPages, ramPol, seed)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", kind)
	}
}

// flushProfile stops the CPU profile and writes the heap profile, if
// either was requested. It reports whether flushing succeeded.
func flushProfile() bool {
	if profile == nil {
		return true
	}
	if err := profile.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "atsim: %v\n", err)
		return false
	}
	return true
}

// flushManifest stamps the run's final status and writes the manifest.
// Best effort — a manifest failure must not fail the simulation it
// describes.
func flushManifest(status, errMsg string) {
	if exitMan == nil || exitManDir == "" {
		return
	}
	exitMan.Status = status
	exitMan.Partial = status != "ok"
	exitMan.Error = errMsg
	exitMan.Finish()
	if path, err := exitMan.Write(exitManDir); err != nil {
		fmt.Fprintf(os.Stderr, "atsim: manifest: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "atsim: wrote run manifest %s\n", path)
	}
}

// fail flushes profiles and the manifest before exiting, since os.Exit
// skips defers. A canceled run (SIGINT/SIGTERM) exits 130 with a
// "canceled" manifest; everything else exits 1 with "failed".
func fail(err error) {
	flushProfile()
	flushTrace()
	status, code := "failed", 1
	if errors.Is(err, context.Canceled) {
		status, code = "canceled", 130
	}
	flushManifest(status, err.Error())
	fmt.Fprintf(os.Stderr, "atsim: %v\n", err)
	os.Exit(code)
}

// serveModeConfig carries the -serve-* flags into runServeMode.
type serveModeConfig struct {
	workload    string
	seed        uint64
	load        float64
	requests    int
	warmup      int
	blockPages  int
	deadlineMul int64
	arrivals    string
	queueCap    int
	attempts    int
	metrics     bool
}

// Metrics policy of -serve-metrics, mirroring the sv3 sweep: windows of
// 64× the calibrated mean service time, a 40×mean p99 budget, and 5
// slowest-request exemplars.
const (
	serveMetricsWindowMul = 64
	serveSLOBudgetMul     = 40
	serveExemplarK        = 5
)

// runServeMode drives the discrete-event serving front-end (DESIGN.md
// §13) over one algorithm: calibrate capacity closed-loop, scale the
// latency-sensitive knobs to the measured mean service time, then run the
// offered load open-loop and print the serve taxonomy and latency
// quantiles. The full sweep record lands in the manifest.
func runServeMode(alg mm.Algorithm, gen workload.Generator, cfg serveModeConfig) (obs.RunRecord, error) {
	if cfg.load <= 0 {
		return obs.RunRecord{}, fmt.Errorf("-serve-load must be positive, got %g", cfg.load)
	}
	// Explain stays on in serve mode: the retry machinery triggers on the
	// explain taxonomy's failure-IO counter.
	ec := mm.EnableExplain(alg)
	sim, err := serve.New(serve.Config{
		Seed:        cfg.seed,
		Requests:    cfg.requests,
		BlockPages:  cfg.blockPages,
		QueueCap:    cfg.queueCap,
		MaxAttempts: cfg.attempts,
		Governor: serve.GovernorConfig{
			WindowNs:     1, // rescaled to the calibrated mean below
			QueueHigh:    cfg.queueCap * 3 / 4,
			MissNum:      1,
			MissDen:      5,
			RecoverDepth: cfg.queueCap / 5,
			DegradedDiv:  4,
		},
	}, alg, gen, &mm.Scratch{}, ec)
	if err != nil {
		return obs.RunRecord{}, err
	}
	start := time.Now()
	mean := sim.Calibrate(cfg.warmup)
	sim.SetDeadlineNs(cfg.deadlineMul * mean)
	sim.SetGovernorWindowNs(20 * mean)
	sim.SetRetryBaseNs(4 * mean)
	sim.SetTokenBucket(mean/4+1, int64(cfg.queueCap))
	var arr workload.ArrivalProcess
	switch cfg.arrivals {
	case "poisson":
		arr = workload.NewPoisson(cfg.seed+2, float64(mean)/cfg.load)
	case "burst":
		// 50% duty cycle at twice the rate: same offered load, bursty.
		arr = workload.NewOnOffBurst(cfg.seed+2, float64(mean)/(2*cfg.load), 500*mean, 500*mean)
	case "diurnal":
		arr = workload.NewDiurnal(cfg.seed+2, float64(mean)/cfg.load, []int64{2000 * mean}, []float64{0.5})
	default:
		return obs.RunRecord{}, fmt.Errorf("unknown -serve-arrivals %q (want poisson|burst|diurnal)", cfg.arrivals)
	}
	sim.SetArrivals(arr)
	if cfg.metrics {
		sim.ArmMetrics(metrics.Config{
			WidthNs:   serveMetricsWindowMul * mean,
			BudgetNs:  serveSLOBudgetMul * mean,
			Exemplars: serveExemplarK,
		})
	}
	res := sim.Run()
	elapsed := time.Since(start)
	if err := res.Counters.CheckIdentity(); err != nil {
		return obs.RunRecord{}, err
	}
	sim.TraceInto(xtrace.Active(), fmt.Sprintf("atsim %s|load=%g", alg.Name(), cfg.load))

	c := res.Counters
	fmt.Printf("algorithm: %s\n", alg.Name())
	fmt.Printf("serving:   %s arrivals at %.2fx capacity, %d requests of %d pages (calibrated on %d)\n",
		arr.Name(), cfg.load, cfg.requests, cfg.blockPages, cfg.warmup)
	fmt.Printf("capacity:  mean service %d ns -> %.1f req/s; deadline %dx mean, queue cap %d, %d attempts\n",
		mean, 1e9/float64(mean), cfg.deadlineMul, cfg.queueCap, cfg.attempts)
	fmt.Printf("taxonomy:  offered %d = admitted %d + rejected %d (queue %d, throttle %d)\n",
		c.Offered, c.Admitted, c.RejectedQueue+c.RejectedThrottle, c.RejectedQueue, c.RejectedThrottle)
	fmt.Printf("           admitted %d = completed %d + timed out %d (queued %d, served %d) + shed %d\n",
		c.Admitted, c.Completed, c.TimedOutQueued+c.TimedOutServed, c.TimedOutQueued, c.TimedOutServed, c.Shed)
	fmt.Printf("           retries %d (exhausted %d), degraded %d, governor trips %d / recovers %d\n",
		c.Retries, c.RetryExhausted, c.Degraded, c.GovernorTrips, c.GovernorRecovers)
	fmt.Printf("goodput:   %.1f req/s over a %.3fs virtual horizon\n",
		res.GoodputPerSec(), float64(res.HorizonNs)/1e9)
	fmt.Printf("latency:   p50 %d ns, p99 %d ns, p999 %d ns (completed requests; max queue depth %d)\n",
		res.Latency.Quantile(0.50), res.Latency.Quantile(0.99), res.Latency.Quantile(0.999), res.MaxQueueDepth)
	if m := res.Metrics; m != nil {
		printServeMetrics(m)
	}

	pt := serve.PointFrom(alg.Name(), cfg.load, res)
	rec := serve.SweepRecord{
		Table:       "atsim-serve",
		Workload:    cfg.workload,
		Arrivals:    arr.Name(),
		Loads:       []float64{cfg.load},
		Requests:    cfg.requests,
		Warmup:      cfg.warmup,
		BlockPages:  cfg.blockPages,
		QueueCap:    cfg.queueCap,
		DeadlineNs:  cfg.deadlineMul, // multiples of the calibrated mean
		MaxAttempts: cfg.attempts,
		RetryBaseNs: 4,
		Cost:        serve.DefaultCostModel(),
		Governor: serve.GovernorConfig{
			WindowNs:     20,
			QueueHigh:    cfg.queueCap * 3 / 4,
			MissNum:      1,
			MissDen:      5,
			RecoverDepth: cfg.queueCap / 5,
			DegradedDiv:  4,
		},
		Points: []serve.Point{pt},
	}
	if cfg.metrics {
		rec.MetricsWindowMul = serveMetricsWindowMul
		rec.SLOBudgetMul = serveSLOBudgetMul
		rec.ExemplarK = serveExemplarK
	}
	return obs.RunRecord{
		ID: "serve", Table: "atsim-serve", Rows: 1,
		WallSeconds: elapsed.Seconds(), Serve: &rec,
	}, nil
}

// printServeMetrics renders the windowed telemetry stream of a
// -serve-metrics run: one line per virtual-time window, the SLO verdict,
// and the slowest-request exemplars with their causal latency split.
func printServeMetrics(m *metrics.Record) {
	fmt.Printf("windows:   %d of %d ns; SLO p99 <= %d ns: %d violation(s), burn rate %.1f%%, longest streak %d\n",
		len(m.Windows), m.WidthNs, m.SLO.BudgetNs, m.SLO.Violations, m.SLO.BurnRatePct(), m.SLO.MaxStreak)
	fmt.Printf("  %6s %14s %9s %9s %7s %7s %9s %7s %6s %12s %12s %s\n",
		"win", "start_ns", "admitted", "completed", "shed", "t_out", "retries", "queue", "tokens", "p50_ns", "p99_ns", "flags")
	for i := range m.Windows {
		w := &m.Windows[i]
		flags := ""
		if w.Degraded {
			flags += "D"
		}
		if w.Violation {
			flags += "V"
		}
		fmt.Printf("  %6d %14d %9d %9d %7d %7d %9d %7d %6d %12d %12d %s\n",
			w.Index, w.StartNs, w.Admitted, w.Completed, w.Shed, w.TimedOut,
			w.Retries, w.QueueDepth, w.Tokens, w.P50Ns, w.P99Ns, flags)
	}
	if len(m.Exemplars) > 0 {
		fmt.Printf("slowest:   %d exemplar(s) — where the tail latency went\n", len(m.Exemplars))
		for _, ex := range m.Exemplars {
			fmt.Printf("  req#%-8d %-16s latency %12d ns = queued %d + service %d + backoff %d (attempts %d, failure IOs %d, degraded %v)\n",
				ex.Seq, ex.Outcome, ex.LatencyNs, ex.QueuedNs, ex.ServiceNs, ex.BackoffNs,
				ex.Attempts, ex.FailureIOs, ex.Degraded)
		}
	}
}

// writeServeMetricsTSV writes the sweep record's window dump to path.
func writeServeMetricsTSV(path string, rec *serve.SweepRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := serve.WriteMetricsTSV(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
