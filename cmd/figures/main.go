// Command figures regenerates every table and figure of the paper's
// evaluation (and the theorem-shape experiments). See DESIGN.md §3 for the
// experiment index.
//
// Usage:
//
//	figures                      # run everything at the scaled defaults
//	figures -fig f1a             # one experiment
//	figures -fig t1,f1a          # a comma-separated subset, in order
//	figures -full                # paper-scale dimensions (slow)
//	figures -format csv -out dir # write one CSV per experiment into dir
//	figures -cache dir           # result-cache location (default results/cache)
//	figures -no-cache            # resimulate every cell
//	figures -sample 1000000      # record cost-over-time curves every 1M accesses
//	figures -explain             # attribute costs: <experiment>.explain.tsv/.json
//	figures -http :8321          # serve live sweep counters at /debug/vars
//	figures -resume manifest.json # resume an interrupted run
//
// Finished simulation cells are cached under results/cache keyed by a
// hash of (workload, algorithm, machine geometry, window lengths, scale,
// seed); rerunning an experiment answers unchanged cells from the cache.
// See EXPERIMENTS.md for the key scheme and when to wipe the cache.
//
// Every run writes a JSON manifest (flag configuration, seeds, go
// version, git revision, per-experiment wall times and phase splits,
// cache hit counts) into the -manifest directory, prints per-experiment
// progress with ETA and cache hit rate on stderr, and — with -sample N —
// emits one <experiment>.curves.tsv cost-over-time file per experiment
// next to the figure outputs. See the Observability sections of README.md
// and EXPERIMENTS.md.
//
// Fault tolerance: SIGINT/SIGTERM drains the sweep at a chunk boundary,
// flushes the manifest with "status": "canceled" and "partial": true, and
// exits 130. Alongside the manifest a sweep journal records each finished
// cell and experiment; `figures -resume <manifest>` restores the recorded
// flags (explicit flags on the resume command line win), skips journaled
// experiments, answers journaled cells from the result cache, and
// reproduces byte-identical tables. ADDRXLAT_FAULTS arms fault injection
// for testing these paths (see internal/faultinject).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"addrxlat/internal/experiments"
	"addrxlat/internal/faultinject"
	"addrxlat/internal/journal"
	"addrxlat/internal/mm"
	"addrxlat/internal/obs"
	"addrxlat/internal/prof"
	"addrxlat/internal/resultcache"
	"addrxlat/internal/serve"
	"addrxlat/internal/xtrace"
)

// profile is flushed on every exit path, including die().
var profile *prof.Flags

// exitMan/exitManDir let every exit path (die, cancellation, normal
// completion) flush the run manifest with an honest status.
var (
	exitMan    *obs.Manifest
	exitManDir string
)

// exitTrace is the armed execution tracer, flushed to exitTracePath on
// every exit path. The sweep span lives on sweepThread, closed by
// flushTrace so even an aborted run exports a well-formed trace (the row
// executors join their workers before returning, so the tracer is always
// quiescent by the time any exit path runs).
var (
	exitTrace     *xtrace.Tracer
	exitTracePath string
	sweepThread   *xtrace.Thread
	sweepStart    int64
)

// flushTrace closes the sweep span and writes the Chrome trace-event
// JSON. Idempotent; best effort like the other flushers.
func flushTrace() {
	t := exitTrace
	if t == nil {
		return
	}
	exitTrace = nil
	sweepThread.Span("figures", xtrace.CatSweep, sweepStart)
	if err := t.WriteFile(exitTracePath); err != nil {
		fmt.Fprintf(os.Stderr, "figures: trace: %v\n", err)
	} else {
		threads, events, _ := t.Stats()
		fmt.Fprintf(os.Stderr, "figures: wrote execution trace %s (%d timelines, %d events); load it at https://ui.perfetto.dev\n",
			exitTracePath, threads, events)
	}
}

func main() {
	var (
		fig       = flag.String("fig", "all", "experiment ids, comma-separated: f1a|f1b|f1c|t1|t2|t3|t4|e2|e3|e4|e5|h1|sv1|sv2|sv3|...|all")
		full      = flag.Bool("full", false, "run at the paper's full dimensions (slow)")
		seed      = flag.Uint64("seed", 1, "root random seed")
		format    = flag.String("format", "tsv", "output format: tsv|csv")
		outDir    = flag.String("out", "", "write one file per experiment into this directory (default stdout)")
		cacheDir  = flag.String("cache", "results/cache", "content-addressed result cache directory (see EXPERIMENTS.md)")
		noCache   = flag.Bool("no-cache", false, "disable the result cache: simulate every cell")
		sample    = flag.Uint64("sample", 0, "record cost-over-time curves every N accesses per algorithm (0 disables); written as <experiment>.curves.tsv next to the outputs")
		explainF  = flag.Bool("explain", false, "record per-algorithm cost attribution and structural gauges; written as <experiment>.explain.tsv/.json next to the outputs and summarized in the manifest")
		maniDir   = flag.String("manifest", "results", "write a run-manifest JSON and sweep journal into this directory (empty disables)")
		httpAddr  = flag.String("http", "", "serve live sweep counters (expvar) on this address, e.g. :8321")
		progress  = flag.Bool("progress", true, "print live per-experiment progress with ETA to stderr")
		resume    = flag.String("resume", "", "resume an interrupted run from its manifest: restores the recorded flags (explicit flags here win) and skips journaled experiments")
		workers   = flag.Int("workers", 0, "max concurrent simulations per streaming row / tasks per sweep (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		lookahead = flag.Int("lookahead", 0, "chunks the row generator may run ahead of the slowest simulator in pipelined rows (0 = default); affects only overlap, never results")
		traceF    = flag.String("trace", "", "export a Perfetto-loadable execution trace (Chrome trace-event JSON) of the sweep to this file; also derives <experiment>.timeline.tsv straggler reports next to the outputs. Results stay byte-identical")
		serveMet  = flag.Bool("serve-metrics", false, "arm the virtual-time window collector on serve sweeps (sv1/sv2; sv3 always arms it): per-window counters/gauges/quantiles, SLO verdicts, and slowest-request exemplars, written as <table>.serve.metrics.tsv next to the outputs and recorded in the manifest. Tables stay byte-identical")
	)
	profile = prof.Register(nil)
	flag.Parse()
	if err := faultinject.ArmFromEnv(); err != nil {
		die(2, "figures: %v\n", err)
	}

	// -resume restores the interrupted run's flag configuration so the
	// resumed sweep reproduces the same tables; flags given explicitly on
	// this command line keep their values.
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	var prior *obs.Manifest
	if *resume != "" {
		var err error
		prior, err = obs.LoadManifest(*resume)
		if err != nil {
			die(1, "figures: -resume: %v\n", err)
		}
		if prior.Command != "figures" {
			die(2, "figures: -resume: manifest %s records a %q run, not figures\n", *resume, prior.Command)
		}
		for name, val := range prior.Config {
			if name == "resume" || explicit[name] {
				continue
			}
			if f := flag.Lookup(name); f != nil {
				if err := f.Value.Set(val); err != nil {
					die(2, "figures: -resume: restoring -%s=%q: %v\n", name, val, err)
				}
			}
		}
	}

	if err := profile.Start(); err != nil {
		die(1, "figures: %v\n", err)
	}
	defer func() {
		if !flushProfile() {
			os.Exit(1)
		}
	}()

	// SIGINT/SIGTERM cancel the sweep context; the row drivers drain at
	// the next chunk boundary and the run exits 130 below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale := experiments.DownScale()
	if *full {
		scale = experiments.PaperScale()
	}
	scale.Ctx = ctx
	scale.Workers = *workers
	scale.Lookahead = *lookahead
	// The stalled-worker watchdog arms from the environment, never a
	// default: ADDRXLAT_WATCHDOG=30s style (see DESIGN.md).
	scale.Watchdog = experiments.WatchdogFromEnv()
	scale.ServeMetrics = *serveMet
	var cache *resultcache.Cache
	if !*noCache && *cacheDir != "" {
		var err error
		cache, err = resultcache.Open(*cacheDir)
		if err != nil {
			die(1, "figures: %v\n", err)
		}
		scale.Cache = cache
		scale.Blobs = cache
	}

	type runner func(experiments.Scale) (*experiments.Table, error)
	all := []struct {
		id  string
		run runner
	}{
		{"f1a", func(s experiments.Scale) (*experiments.Table, error) {
			return experiments.Fig1(experiments.F1aBimodal, s, *seed)
		}},
		{"f1b", func(s experiments.Scale) (*experiments.Table, error) {
			return experiments.Fig1(experiments.F1bGraphWalk, s, *seed)
		}},
		{"f1c", func(s experiments.Scale) (*experiments.Table, error) {
			return experiments.Fig1(experiments.F1cGraph500, s, *seed)
		}},
		{"t1", func(experiments.Scale) (*experiments.Table, error) { return experiments.Theorem1(1<<18, 3) }},
		{"t2", func(experiments.Scale) (*experiments.Table, error) {
			return experiments.Theorem2(32, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14}, 20000, *seed)
		}},
		{"t3", func(experiments.Scale) (*experiments.Table, error) { return experiments.Theorem3(1<<18, 3) }},
		{"t4", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Theorem4(s, *seed) }},
		{"e2", func(experiments.Scale) (*experiments.Table, error) { return experiments.Equation2(64) }},
		{"e2w", func(experiments.Scale) (*experiments.Table, error) { return experiments.CoverageVsW(1 << 32) }},
		{"e3", func(experiments.Scale) (*experiments.Table, error) { return experiments.Policies(1024, 500000, *seed) }},
		{"e4", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Adaptive(s, *seed) }},
		{"e5", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Nested(s, *seed) }},
		{"h1", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Hybrid(s, *seed) }},
		{"whp", func(experiments.Scale) (*experiments.Table, error) {
			return experiments.FailureProbability([]uint{12, 14, 16, 18}, 20)
		}},
		{"e6", func(experiments.Scale) (*experiments.Table, error) {
			return experiments.Tenants(1536, 4096, 2_000_000, *seed)
		}},
		{"e7", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Related(s, *seed) }},
		{"e8", func(s experiments.Scale) (*experiments.Table, error) { return experiments.TimeShare(s, *seed) }},
		{"e9", func(s experiments.Scale) (*experiments.Table, error) { return experiments.TLBGeometryStudy(s, *seed) }},
		{"e10", func(experiments.Scale) (*experiments.Table, error) {
			return experiments.MultiCoreStudy(1536, 1<<14, 2_000_000, *seed)
		}},
		{"x1", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Crossover(s, *seed) }},
		{"sv1", func(s experiments.Scale) (*experiments.Table, error) { return experiments.ServeGoodput(s, *seed) }},
		{"sv2", func(s experiments.Scale) (*experiments.Table, error) { return experiments.ServeLatency(s, *seed) }},
		{"sv3", func(s experiments.Scale) (*experiments.Table, error) { return experiments.ServeSLO(s, *seed) }},
	}

	var selected []struct {
		id  string
		run runner
	}
	seen := make(map[string]bool)
	for _, id := range strings.Split(*fig, ",") {
		id = strings.TrimSpace(id)
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		if id == "all" {
			selected = all
			break
		}
		found := false
		for _, e := range all {
			if e.id == id {
				selected = append(selected, e)
				found = true
				break
			}
		}
		if !found {
			die(2, "figures: unknown experiment %q (want one of f1a f1b f1c t1 t2 t3 t4 e2 e3 e4 e5 h1 ... all)\n", id)
		}
	}
	if len(selected) == 0 {
		die(2, "figures: no experiments selected by -fig %q\n", *fig)
	}

	man := obs.NewManifest("figures", os.Args[1:])
	man.Config = obs.FlagConfig(nil)
	man.Seeds = []uint64{*seed}
	man.FaultPlan = faultinject.Plan()
	exitMan, exitManDir = man, *maniDir

	// The sweep journal witnesses finished cells and experiments; a
	// resumed run appends to the interrupted run's journal so completed
	// experiments stay skipped across any number of crashes.
	var (
		jw     *journal.Writer
		jstate *journal.State
	)
	if *maniDir != "" {
		jpath := filepath.Join(*maniDir, man.JournalFilename())
		if prior != nil && prior.Journal != "" {
			jpath = prior.Journal
			st, err := journal.Load(jpath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: -resume: journal %s unreadable (%v); resuming from the cache alone\n", jpath, err)
			} else {
				jstate = st
				if st.Skipped > 0 {
					fmt.Fprintf(os.Stderr, "figures: -resume: journal %s: skipped %d torn line(s)\n", jpath, st.Skipped)
				}
			}
		}
		man.Journal = jpath
		var err error
		jw, err = journal.Create(jpath)
		if err != nil {
			die(1, "figures: %v\n", err)
		}
		defer jw.Close()
		if cache != nil {
			scale.Cache = journalingCache{inner: cache, jw: jw}
		}
		// An early manifest marks the run in flight; a SIGKILL leaves this
		// "running" manifest behind as the -resume handle.
		man.Status = "running"
		man.Partial = true
		if _, err := man.Write(*maniDir); err != nil {
			fmt.Fprintf(os.Stderr, "figures: manifest: %v\n", err)
		}
	}

	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(os.Stderr, "figures", len(selected))
	}
	if *httpAddr != "" {
		addr, err := obs.StartHTTP(*httpAddr)
		if err != nil {
			die(1, "figures: %v\n", err)
		}
		// The bound address goes into the manifest: with -http :0 the
		// kernel picks the port, and the manifest is where tooling finds it.
		man.HTTPAddr = addr
		fmt.Fprintf(os.Stderr, "figures: serving live counters on http://%s/debug/vars\n", addr)
	}
	var tracer *xtrace.Tracer
	if *traceF != "" {
		tracer = xtrace.New()
		xtrace.Install(tracer)
		sweepThread = tracer.Thread("sweep")
		sweepStart = tracer.Now()
		exitTrace, exitTracePath = tracer, *traceF
		man.Trace = *traceF
	}
	// Curves land next to the figure outputs; with stdout output they go
	// to the manifest directory instead.
	curveDir := *outDir
	if curveDir == "" {
		curveDir = *maniDir
	}

	for _, e := range selected {
		if jstate != nil && jstate.Experiments[e.id] {
			fmt.Fprintf(os.Stderr, "figures: %s: complete in journal, skipped (resume)\n", e.id)
			man.Experiments = append(man.Experiments, obs.RunRecord{ID: e.id, Skipped: true})
			continue
		}
		runScale := scale
		rec := obs.NewRecorder(*sample)
		runScale.Probe = rec
		runScale.Explain = *explainF
		var hits0, misses0 uint64
		if cache != nil {
			hits0, misses0, _ = cache.Stats()
		}
		prog.Start(e.id)
		tracer.SetScope(e.id)
		expStart := tracer.Now()
		start := time.Now()
		tab, err := e.run(runScale)
		sweepThread.Span(e.id, xtrace.CatExperiment, expStart)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// Cooperative drain: the workers stopped at a chunk
				// boundary; flush what we have and exit like an
				// interrupted process should.
				if rec.HasSeries() && curveDir != "" {
					_ = writeCurves(rec, curveDir, e.id+".partial")
				}
				if rec.HasExplain() && curveDir != "" {
					_ = writeExplain(rec, curveDir, e.id+".partial")
				}
				flushProfile()
				flushTrace()
				flushManifest("canceled", fmt.Sprintf("%s: %v", e.id, err))
				fmt.Fprintf(os.Stderr, "figures: %s: %v\n", e.id, err)
				os.Exit(130)
			}
			die(1, "figures: %s: %v\n", e.id, err)
		}
		elapsed := time.Since(start)
		if err := emit(tab, *format, *outDir); err != nil {
			die(1, "figures: %s: %v\n", e.id, err)
		}
		if rec.HasSeries() && curveDir != "" {
			if err := writeCurves(rec, curveDir, tab.Name); err != nil {
				die(1, "figures: %s: %v\n", e.id, err)
			}
		}
		if rec.HasExplain() && curveDir != "" {
			if err := writeExplain(rec, curveDir, tab.Name); err != nil {
				die(1, "figures: %s: %v\n", e.id, err)
			}
		}
		if jw != nil {
			if err := jw.Experiment(e.id); err != nil {
				fmt.Fprintf(os.Stderr, "figures: journal: %v\n", err)
			}
		}
		rr := obs.RunRecord{
			ID: e.id, Table: tab.Name, Rows: len(tab.Rows),
			WallSeconds: elapsed.Seconds(), Phases: rec.Phases(),
		}
		if rec.HasExplain() {
			tot := rec.ExplainTotals()
			rr.Explain = &tot
		}
		// Serving sweeps put their full offered-load grid and governor
		// configuration into the manifest, so a serve table is auditable
		// from its manifest alone.
		rr.Serve = rec.ServeRecord(tab.Name)
		if rr.Serve != nil && rr.Serve.HasMetrics() && curveDir != "" {
			if err := writeServeMetrics(rr.Serve, curveDir, tab.Name); err != nil {
				die(1, "figures: %s: %v\n", e.id, err)
			}
		}
		if tracer != nil {
			// Slice this experiment's rows out of the whole-sweep trace:
			// straggler reports go to the manifest, the expvars, the
			// progress stream, and <table>.timeline.tsv.
			var reps []xtrace.RowReport
			for _, rep := range tracer.Analyze() {
				if rep.Experiment != e.id {
					continue
				}
				reps = append(reps, rep)
				rec.RowTimeline(rep)
				prog.Timeline(rep)
			}
			rr.Timeline = reps
			if len(reps) > 0 && curveDir != "" {
				if err := writeTimeline(reps, curveDir, tab.Name); err != nil {
					die(1, "figures: %s: %v\n", e.id, err)
				}
			}
		}
		var hits, misses uint64
		if cache != nil {
			hits, misses, _ = cache.Stats()
			rr.CacheHits, rr.CacheMisses = hits-hits0, misses-misses0
		}
		man.Experiments = append(man.Experiments, rr)
		prog.Finish(e.id, elapsed, hits, misses)
	}

	if cache != nil {
		hits, misses, corrupt := cache.Stats()
		man.Cache = &obs.CacheStats{Dir: cache.Dir(), Hits: hits, Misses: misses, Corrupt: corrupt}
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(os.Stderr, "figures: result cache: %d hits, %d misses (%.1f%% hit rate) under %s\n",
			hits, misses, rate, cache.Dir())
		if corrupt > 0 {
			fmt.Fprintf(os.Stderr, "figures: result cache: quarantined %d corrupt entr%s under %s\n",
				corrupt, plural(corrupt, "y", "ies"), filepath.Join(cache.Dir(), resultcache.QuarantineDir))
		}
	}
	flushTrace()
	flushManifest("ok", "")
}

// journalingCache witnesses every finished cell in the sweep journal as
// it enters the result cache, so a resumed run knows which cells the
// cache can answer without trusting anything else.
type journalingCache struct {
	inner experiments.CostCache
	jw    *journal.Writer
}

func (c journalingCache) Get(key string) (mm.Costs, bool) { return c.inner.Get(key) }

func (c journalingCache) Put(key string, v mm.Costs) {
	c.inner.Put(key, v)
	if err := c.jw.Cell(key); err != nil {
		fmt.Fprintf(os.Stderr, "figures: journal: %v\n", err)
	}
}

func plural(n uint64, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// writeTimeline renders one experiment's straggler / chunk-latency
// reports into <dir>/<name>.timeline.tsv. Unlike the tables and curves
// these numbers are wall-clock measurements and not byte-stable.
func writeTimeline(reps []xtrace.RowReport, dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".timeline.tsv"))
	if err != nil {
		return err
	}
	if err := xtrace.WriteTimelineTSV(f, reps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeServeMetrics dumps a serve sweep's per-window telemetry stream
// into <dir>/<name>.serve.metrics.tsv (one row per (alg, load, window),
// SLO summaries and exemplars as comment lines).
func writeServeMetrics(sv *serve.SweepRecord, dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".serve.metrics.tsv"))
	if err != nil {
		return err
	}
	if err := serve.WriteMetricsTSV(f, sv); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCurves renders one experiment's cost-over-time series into
// <dir>/<name>.curves.tsv.
func writeCurves(rec *obs.Recorder, dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".curves.tsv"))
	if err != nil {
		return err
	}
	if err := rec.WriteTSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeExplain renders one experiment's cost-attribution snapshot into
// <dir>/<name>.explain.tsv and .explain.json.
func writeExplain(rec *obs.Recorder, dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(dir, name+".explain.tsv"))
	if err != nil {
		return err
	}
	if err := rec.WriteExplainTSV(tf); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, name+".explain.json"))
	if err != nil {
		return err
	}
	if err := rec.WriteExplainJSON(jf); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}

// flushProfile stops the CPU profile and writes the heap profile, if
// either was requested. It reports whether flushing succeeded.
func flushProfile() bool {
	if profile == nil {
		return true
	}
	if err := profile.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		return false
	}
	return true
}

// flushManifest stamps the run's final status and (re)writes the
// manifest under its stable filename. Best effort — a manifest failure
// must not mask the run's own outcome.
func flushManifest(status, errMsg string) {
	if exitMan == nil || exitManDir == "" {
		return
	}
	exitMan.Status = status
	exitMan.Partial = status != "ok"
	exitMan.Error = errMsg
	exitMan.Finish()
	if path, err := exitMan.Write(exitManDir); err != nil {
		fmt.Fprintf(os.Stderr, "figures: manifest: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "figures: wrote run manifest %s\n", path)
	}
}

// die flushes profiles, the trace, and the manifest before exiting,
// since os.Exit skips defers.
func die(code int, format string, args ...interface{}) {
	flushProfile()
	flushTrace()
	flushManifest("failed", strings.TrimSpace(fmt.Sprintf(format, args...)))
	fmt.Fprintf(os.Stderr, format, args...)
	os.Exit(code)
}

func emit(tab *experiments.Table, format, outDir string) error {
	out := os.Stdout
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(outDir, tab.Name+"."+format))
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch strings.ToLower(format) {
	case "tsv":
		if err := tab.WriteTSV(out); err != nil {
			return err
		}
	case "csv":
		if err := tab.WriteCSV(out); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if outDir == "" {
		fmt.Fprintln(out)
	}
	return nil
}
