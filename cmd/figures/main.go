// Command figures regenerates every table and figure of the paper's
// evaluation (and the theorem-shape experiments). See DESIGN.md §3 for the
// experiment index.
//
// Usage:
//
//	figures                      # run everything at the scaled defaults
//	figures -fig f1a             # one experiment
//	figures -full                # paper-scale dimensions (slow)
//	figures -format csv -out dir # write one CSV per experiment into dir
//	figures -cache dir           # result-cache location (default results/cache)
//	figures -no-cache            # resimulate every cell
//	figures -sample 1000000      # record cost-over-time curves every 1M accesses
//	figures -http :8321          # serve live sweep counters at /debug/vars
//
// Finished simulation cells are cached under results/cache keyed by a
// hash of (workload, algorithm, machine geometry, window lengths, scale,
// seed); rerunning an experiment answers unchanged cells from the cache.
// See EXPERIMENTS.md for the key scheme and when to wipe the cache.
//
// Every run writes a JSON manifest (flag configuration, seeds, go
// version, git revision, per-experiment wall times and phase splits,
// cache hit counts) into the -manifest directory, prints per-experiment
// progress with ETA and cache hit rate on stderr, and — with -sample N —
// emits one <experiment>.curves.tsv cost-over-time file per experiment
// next to the figure outputs. See the Observability sections of README.md
// and EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"addrxlat/internal/experiments"
	"addrxlat/internal/obs"
	"addrxlat/internal/prof"
	"addrxlat/internal/resultcache"
)

// profile is flushed on every exit path, including die().
var profile *prof.Flags

func main() {
	var (
		fig      = flag.String("fig", "all", "experiment id: f1a|f1b|f1c|t1|t2|t3|t4|e2|e3|e4|e5|h1|all")
		full     = flag.Bool("full", false, "run at the paper's full dimensions (slow)")
		seed     = flag.Uint64("seed", 1, "root random seed")
		format   = flag.String("format", "tsv", "output format: tsv|csv")
		outDir   = flag.String("out", "", "write one file per experiment into this directory (default stdout)")
		cacheDir = flag.String("cache", "results/cache", "content-addressed result cache directory (see EXPERIMENTS.md)")
		noCache  = flag.Bool("no-cache", false, "disable the result cache: simulate every cell")
		sample   = flag.Uint64("sample", 0, "record cost-over-time curves every N accesses per algorithm (0 disables); written as <experiment>.curves.tsv next to the outputs")
		maniDir  = flag.String("manifest", "results", "write a run-manifest JSON into this directory (empty disables)")
		httpAddr = flag.String("http", "", "serve live sweep counters (expvar) on this address, e.g. :8321")
		progress = flag.Bool("progress", true, "print live per-experiment progress with ETA to stderr")
	)
	profile = prof.Register(nil)
	flag.Parse()
	if err := profile.Start(); err != nil {
		die(1, "figures: %v\n", err)
	}
	defer func() {
		if !flushProfile() {
			os.Exit(1)
		}
	}()

	scale := experiments.DownScale()
	if *full {
		scale = experiments.PaperScale()
	}
	var cache *resultcache.Cache
	if !*noCache && *cacheDir != "" {
		var err error
		cache, err = resultcache.Open(*cacheDir)
		if err != nil {
			die(1, "figures: %v\n", err)
		}
		scale.Cache = cache
	}

	type runner func(experiments.Scale) (*experiments.Table, error)
	all := []struct {
		id  string
		run runner
	}{
		{"f1a", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Fig1(experiments.F1aBimodal, s, *seed) }},
		{"f1b", func(s experiments.Scale) (*experiments.Table, error) {
			return experiments.Fig1(experiments.F1bGraphWalk, s, *seed)
		}},
		{"f1c", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Fig1(experiments.F1cGraph500, s, *seed) }},
		{"t1", func(experiments.Scale) (*experiments.Table, error) { return experiments.Theorem1(1<<18, 3) }},
		{"t2", func(experiments.Scale) (*experiments.Table, error) {
			return experiments.Theorem2(32, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14}, 20000, *seed)
		}},
		{"t3", func(experiments.Scale) (*experiments.Table, error) { return experiments.Theorem3(1<<18, 3) }},
		{"t4", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Theorem4(s, *seed) }},
		{"e2", func(experiments.Scale) (*experiments.Table, error) { return experiments.Equation2(64) }},
		{"e2w", func(experiments.Scale) (*experiments.Table, error) { return experiments.CoverageVsW(1 << 32) }},
		{"e3", func(experiments.Scale) (*experiments.Table, error) { return experiments.Policies(1024, 500000, *seed) }},
		{"e4", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Adaptive(s, *seed) }},
		{"e5", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Nested(s, *seed) }},
		{"h1", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Hybrid(s, *seed) }},
		{"whp", func(experiments.Scale) (*experiments.Table, error) {
			return experiments.FailureProbability([]uint{12, 14, 16, 18}, 20)
		}},
		{"e6", func(experiments.Scale) (*experiments.Table, error) {
			return experiments.Tenants(1536, 4096, 2_000_000, *seed)
		}},
		{"e7", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Related(s, *seed) }},
		{"e8", func(s experiments.Scale) (*experiments.Table, error) { return experiments.TimeShare(s, *seed) }},
		{"e9", func(s experiments.Scale) (*experiments.Table, error) { return experiments.TLBGeometryStudy(s, *seed) }},
		{"e10", func(experiments.Scale) (*experiments.Table, error) {
			return experiments.MultiCoreStudy(1536, 1<<14, 2_000_000, *seed)
		}},
		{"x1", func(s experiments.Scale) (*experiments.Table, error) { return experiments.Crossover(s, *seed) }},
	}

	var selected []struct {
		id  string
		run runner
	}
	if *fig == "all" {
		selected = all
	} else {
		for _, e := range all {
			if e.id == *fig {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			die(2, "figures: unknown experiment %q (want one of f1a f1b f1c t1 t2 t3 t4 e2 e3 e4 e5 h1 all)\n", *fig)
		}
	}

	man := obs.NewManifest("figures", os.Args[1:])
	man.Config = obs.FlagConfig(nil)
	man.Seeds = []uint64{*seed}
	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(os.Stderr, "figures", len(selected))
	}
	if *httpAddr != "" {
		addr, err := obs.StartHTTP(*httpAddr)
		if err != nil {
			die(1, "figures: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "figures: serving live counters on http://%s/debug/vars\n", addr)
	}
	// Curves land next to the figure outputs; with stdout output they go
	// to the manifest directory instead.
	curveDir := *outDir
	if curveDir == "" {
		curveDir = *maniDir
	}

	for _, e := range selected {
		runScale := scale
		rec := obs.NewRecorder(*sample)
		runScale.Probe = rec
		var hits0, misses0 uint64
		if cache != nil {
			hits0, misses0 = cache.Stats()
		}
		prog.Start(e.id)
		start := time.Now()
		tab, err := e.run(runScale)
		if err != nil {
			die(1, "figures: %s: %v\n", e.id, err)
		}
		elapsed := time.Since(start)
		if err := emit(tab, *format, *outDir); err != nil {
			die(1, "figures: %s: %v\n", e.id, err)
		}
		if rec.HasSeries() && curveDir != "" {
			if err := writeCurves(rec, curveDir, tab.Name); err != nil {
				die(1, "figures: %s: %v\n", e.id, err)
			}
		}
		rr := obs.RunRecord{
			ID: e.id, Table: tab.Name, Rows: len(tab.Rows),
			WallSeconds: elapsed.Seconds(), Phases: rec.Phases(),
		}
		var hits, misses uint64
		if cache != nil {
			hits, misses = cache.Stats()
			rr.CacheHits, rr.CacheMisses = hits-hits0, misses-misses0
		}
		man.Experiments = append(man.Experiments, rr)
		prog.Finish(e.id, elapsed, hits, misses)
	}

	man.Finish()
	if cache != nil {
		hits, misses := cache.Stats()
		man.Cache = &obs.CacheStats{Dir: cache.Dir(), Hits: hits, Misses: misses}
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(os.Stderr, "figures: result cache: %d hits, %d misses (%.1f%% hit rate) under %s\n",
			hits, misses, rate, cache.Dir())
	}
	if *maniDir != "" {
		path, err := man.Write(*maniDir)
		if err != nil {
			die(1, "figures: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "figures: wrote run manifest %s\n", path)
	}
}

// writeCurves renders one experiment's cost-over-time series into
// <dir>/<name>.curves.tsv.
func writeCurves(rec *obs.Recorder, dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".curves.tsv"))
	if err != nil {
		return err
	}
	if err := rec.WriteTSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// flushProfile stops the CPU profile and writes the heap profile, if
// either was requested. It reports whether flushing succeeded.
func flushProfile() bool {
	if profile == nil {
		return true
	}
	if err := profile.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		return false
	}
	return true
}

// die flushes profiles before exiting, since os.Exit skips defers.
func die(code int, format string, args ...interface{}) {
	flushProfile()
	fmt.Fprintf(os.Stderr, format, args...)
	os.Exit(code)
}

func emit(tab *experiments.Table, format, outDir string) error {
	out := os.Stdout
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(outDir, tab.Name+"."+format))
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch strings.ToLower(format) {
	case "tsv":
		if err := tab.WriteTSV(out); err != nil {
			return err
		}
	case "csv":
		if err := tab.WriteCSV(out); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if outDir == "" {
		fmt.Fprintln(out)
	}
	return nil
}
