// Command figures regenerates every table and figure of the paper's
// evaluation (and the theorem-shape experiments). See DESIGN.md §3 for the
// experiment index.
//
// Usage:
//
//	figures                      # run everything at the scaled defaults
//	figures -fig f1a             # one experiment
//	figures -full                # paper-scale dimensions (slow)
//	figures -format csv -out dir # write one CSV per experiment into dir
//	figures -cache dir           # result-cache location (default results/cache)
//	figures -no-cache            # resimulate every cell
//
// Finished simulation cells are cached under results/cache keyed by a
// hash of (workload, algorithm, machine geometry, window lengths, scale,
// seed); rerunning an experiment answers unchanged cells from the cache.
// See EXPERIMENTS.md for the key scheme and when to wipe the cache.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"addrxlat/internal/experiments"
	"addrxlat/internal/prof"
	"addrxlat/internal/resultcache"
)

// profile is flushed on every exit path, including die().
var profile *prof.Flags

func main() {
	var (
		fig      = flag.String("fig", "all", "experiment id: f1a|f1b|f1c|t1|t2|t3|t4|e2|e3|e4|e5|h1|all")
		full     = flag.Bool("full", false, "run at the paper's full dimensions (slow)")
		seed     = flag.Uint64("seed", 1, "root random seed")
		format   = flag.String("format", "tsv", "output format: tsv|csv")
		outDir   = flag.String("out", "", "write one file per experiment into this directory (default stdout)")
		cacheDir = flag.String("cache", "results/cache", "content-addressed result cache directory (see EXPERIMENTS.md)")
		noCache  = flag.Bool("no-cache", false, "disable the result cache: simulate every cell")
	)
	profile = prof.Register(nil)
	flag.Parse()
	if err := profile.Start(); err != nil {
		die(1, "figures: %v\n", err)
	}
	defer func() {
		if !flushProfile() {
			os.Exit(1)
		}
	}()

	scale := experiments.DownScale()
	if *full {
		scale = experiments.PaperScale()
	}
	if !*noCache && *cacheDir != "" {
		cache, err := resultcache.Open(*cacheDir)
		if err != nil {
			die(1, "figures: %v\n", err)
		}
		scale.Cache = cache
	}

	type runner func() (*experiments.Table, error)
	all := []struct {
		id  string
		run runner
	}{
		{"f1a", func() (*experiments.Table, error) { return experiments.Fig1(experiments.F1aBimodal, scale, *seed) }},
		{"f1b", func() (*experiments.Table, error) { return experiments.Fig1(experiments.F1bGraphWalk, scale, *seed) }},
		{"f1c", func() (*experiments.Table, error) { return experiments.Fig1(experiments.F1cGraph500, scale, *seed) }},
		{"t1", func() (*experiments.Table, error) { return experiments.Theorem1(1<<18, 3) }},
		{"t2", func() (*experiments.Table, error) {
			return experiments.Theorem2(32, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14}, 20000, *seed)
		}},
		{"t3", func() (*experiments.Table, error) { return experiments.Theorem3(1<<18, 3) }},
		{"t4", func() (*experiments.Table, error) { return experiments.Theorem4(scale, *seed) }},
		{"e2", func() (*experiments.Table, error) { return experiments.Equation2(64) }},
		{"e2w", func() (*experiments.Table, error) { return experiments.CoverageVsW(1 << 32) }},
		{"e3", func() (*experiments.Table, error) { return experiments.Policies(1024, 500000, *seed) }},
		{"e4", func() (*experiments.Table, error) { return experiments.Adaptive(scale, *seed) }},
		{"e5", func() (*experiments.Table, error) { return experiments.Nested(scale, *seed) }},
		{"h1", func() (*experiments.Table, error) { return experiments.Hybrid(scale, *seed) }},
		{"whp", func() (*experiments.Table, error) {
			return experiments.FailureProbability([]uint{12, 14, 16, 18}, 20)
		}},
		{"e6", func() (*experiments.Table, error) {
			return experiments.Tenants(1536, 4096, 2_000_000, *seed)
		}},
		{"e7", func() (*experiments.Table, error) { return experiments.Related(scale, *seed) }},
		{"e8", func() (*experiments.Table, error) { return experiments.TimeShare(scale, *seed) }},
		{"e9", func() (*experiments.Table, error) { return experiments.TLBGeometryStudy(scale, *seed) }},
		{"e10", func() (*experiments.Table, error) {
			return experiments.MultiCoreStudy(1536, 1<<14, 2_000_000, *seed)
		}},
		{"x1", func() (*experiments.Table, error) { return experiments.Crossover(scale, *seed) }},
	}

	var selected []struct {
		id  string
		run runner
	}
	if *fig == "all" {
		selected = all
	} else {
		for _, e := range all {
			if e.id == *fig {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			die(2, "figures: unknown experiment %q (want one of f1a f1b f1c t1 t2 t3 t4 e2 e3 e4 e5 h1 all)\n", *fig)
		}
	}

	for _, e := range selected {
		tab, err := e.run()
		if err != nil {
			die(1, "figures: %s: %v\n", e.id, err)
		}
		if err := emit(tab, *format, *outDir); err != nil {
			die(1, "figures: %s: %v\n", e.id, err)
		}
	}
}

// flushProfile stops the CPU profile and writes the heap profile, if
// either was requested. It reports whether flushing succeeded.
func flushProfile() bool {
	if profile == nil {
		return true
	}
	if err := profile.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		return false
	}
	return true
}

// die flushes profiles before exiting, since os.Exit skips defers.
func die(code int, format string, args ...interface{}) {
	flushProfile()
	fmt.Fprintf(os.Stderr, format, args...)
	os.Exit(code)
}

func emit(tab *experiments.Table, format, outDir string) error {
	out := os.Stdout
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(outDir, tab.Name+"."+format))
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch strings.ToLower(format) {
	case "tsv":
		if err := tab.WriteTSV(out); err != nil {
			return err
		}
	case "csv":
		if err := tab.WriteCSV(out); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if outDir == "" {
		fmt.Fprintln(out)
	}
	return nil
}
