package main

// Kill-and-resume integration test: build the figures binary, kill it at
// a chunk boundary mid-sweep via the sweep-kill fault point (os.Exit with
// no flushing — a stand-in for SIGKILL/OOM), resume from the manifest it
// left behind, and require the resulting tables to be byte-identical to
// an uninterrupted run. The -fig list puts the instant e2 experiment
// before f1a so the resume also exercises journal-based experiment
// skipping.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"addrxlat/internal/faultinject"
)

// buildFigures compiles the figures binary once per test run.
func buildFigures(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "figures")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runFigures executes the binary and returns its exit code and stderr.
func runFigures(t *testing.T, bin string, env []string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("figures %v: %v\n%s", args, err, stderr.String())
		}
		code = ee.ExitCode()
	}
	return code, stderr.String()
}

func TestKillAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the figures binary")
	}
	bin := buildFigures(t)
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			root := t.TempDir()
			seedArg := fmt.Sprintf("-seed=%d", seed)
			figArg := "-fig=e2,f1a"

			// Reference: one uninterrupted run.
			fullOut := filepath.Join(root, "full-out")
			if code, errOut := runFigures(t, bin, nil, figArg, seedArg,
				"-out="+fullOut,
				"-manifest="+filepath.Join(root, "full-mani"),
				"-cache="+filepath.Join(root, "full-cache"),
				"-progress=false"); code != 0 {
				t.Fatalf("full run exited %d:\n%s", code, errOut)
			}

			// Crash: the sweep-kill fault point os.Exit(137)s at the second
			// chunk boundary of the f1a row — after e2 was emitted and
			// journaled, before f1a could finish.
			partOut := filepath.Join(root, "part-out")
			partMani := filepath.Join(root, "part-mani")
			env := []string{faultinject.EnvVar + "=" + faultinject.SweepKill + "=f1a-bimodal@2"}
			code, errOut := runFigures(t, bin, env, figArg, seedArg,
				"-out="+partOut,
				"-manifest="+partMani,
				"-cache="+filepath.Join(root, "part-cache"),
				"-progress=false")
			if code != faultinject.KillExitCode {
				t.Fatalf("killed run exited %d, want %d:\n%s", code, faultinject.KillExitCode, errOut)
			}

			// The crash left exactly one manifest, frozen at "running".
			manifests, err := filepath.Glob(filepath.Join(partMani, "manifest-*.json"))
			if err != nil || len(manifests) != 1 {
				t.Fatalf("manifests after crash = %v (err %v), want exactly 1", manifests, err)
			}
			data, err := os.ReadFile(manifests[0])
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(data), `"status": "running"`) {
				t.Fatalf("crashed manifest is not marked running:\n%s", data)
			}

			// Resume from the crashed manifest: flags are restored from its
			// config, e2 is skipped via the journal, f1a is recomputed.
			code, errOut = runFigures(t, bin, nil, "-resume="+manifests[0])
			if code != 0 {
				t.Fatalf("resume exited %d:\n%s", code, errOut)
			}
			if !strings.Contains(errOut, "e2: complete in journal, skipped (resume)") {
				t.Errorf("resume did not journal-skip e2:\n%s", errOut)
			}

			// Acceptance: byte-identical tables.
			for _, name := range []string{"e2-hmax-scaling.tsv", "f1a-bimodal.tsv"} {
				want, err := os.ReadFile(filepath.Join(fullOut, name))
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(filepath.Join(partOut, name))
				if err != nil {
					t.Fatalf("resumed run did not produce %s: %v", name, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s differs after kill+resume:\n--- uninterrupted\n%s--- resumed\n%s", name, want, got)
				}
			}
		})
	}
}

// TestPoisonedCellFooter is the CLI half of the per-cell fault story: a
// single poisoned parameter point must not kill the sweep — its row reads
// "error", the failure is footnoted, and every other row is produced.
func TestPoisonedCellFooter(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the figures binary")
	}
	bin := buildFigures(t)
	root := t.TempDir()
	outDir := filepath.Join(root, "out")
	env := []string{faultinject.EnvVar + "=" + faultinject.CellPanic + "=(h=16"}
	if code, errOut := runFigures(t, bin, env, "-fig=f1a", "-seed=1",
		"-out="+outDir,
		"-manifest="+filepath.Join(root, "mani"),
		"-no-cache", "-progress=false"); code != 0 {
		t.Fatalf("sweep with one poisoned cell exited %d:\n%s", code, errOut)
	}
	data, err := os.ReadFile(filepath.Join(outDir, "f1a-bimodal.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	tsv := string(data)
	if !strings.Contains(tsv, "16\terror\terror\terror\n") {
		t.Errorf("poisoned h=16 row missing from table:\n%s", tsv)
	}
	if !strings.Contains(tsv, "# note: cell h=16 failed:") {
		t.Errorf("table footer lacks the per-cell error note:\n%s", tsv)
	}
	if n := strings.Count(tsv, "\terror"); n != 3 { // one row of three error cells
		t.Errorf("%d error cells, want exactly 3 (one degraded row):\n%s", n, tsv)
	}
}
