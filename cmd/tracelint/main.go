// Command tracelint validates Chrome trace-event JSON files (as exported
// by `figures -trace` / `atsim -trace`) against the schema the viewers
// rely on: required keys per event phase, non-negative timestamps, and
// per-timeline span nesting. It exists so CI's trace-smoke target can
// assert the export is loadable without shipping a browser.
//
// Usage:
//
//	tracelint sweep.trace.json [more.json ...]
//
// Exits 0 when every file validates, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"addrxlat/internal/xtrace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracelint <trace.json> [...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	code := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracelint: %v\n", err)
			code = 1
			continue
		}
		spans, err := xtrace.Validate(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("tracelint: %s: ok (%d spans, %d bytes)\n", path, spans, len(data))
	}
	os.Exit(code)
}
